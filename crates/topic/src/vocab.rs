//! Vocabulary construction for the table-as-document topic model.
//!
//! Section 4.2 of the paper: *"Since LDA is an unsupervised model, we only
//! need the vocabulary (i.e., set of all cell values) of the tables without
//! any headers or semantic annotation. We convert numerical values into
//! strings and then concatenate all values in the table sequentially to form
//! a 'document' for each table."*

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A token-to-id mapping with document-frequency based pruning.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
}

/// Tokenize a table "document": lower-cased alphanumeric runs. Numeric cells
/// become numeric tokens, exactly as the paper converts numbers to strings.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Visit the lower-cased tokens of `text` without allocating a `String` per
/// token: each alphanumeric run is case-folded into the reusable `buf` and
/// handed to `f` as a `&str`.
///
/// The token stream is bit-identical to [`tokenize`]. Case is folded per
/// character (ASCII fast path, `char::to_lowercase` expansion otherwise);
/// per-character folding matches `str::to_lowercase` except for
/// context-sensitive mappings (the Greek final sigma is the only one), so
/// tokens containing a non-ASCII uppercase character take a rare exact-fold
/// fallback.
///
/// The fold logic is deliberately identical to
/// `sato_features::hashing::for_each_token_lower` / `hash_token_into`
/// (this crate cannot depend on `sato-features`); a Unicode fix in one
/// copy must be mirrored in the others or the streaming-vs-reference
/// bit-parity contracts break.
pub fn for_each_token_lower(text: &str, buf: &mut String, mut f: impl FnMut(&str)) {
    for token in text.split(|c: char| !c.is_alphanumeric()) {
        if token.is_empty() {
            continue;
        }
        buf.clear();
        if token.chars().any(|c| !c.is_ascii() && c.is_uppercase()) {
            // Context-sensitive case mapping possible: defer to the exact
            // whole-string fold.
            buf.push_str(&token.to_lowercase());
        } else {
            for c in token.chars() {
                if c.is_ascii() {
                    buf.push(c.to_ascii_lowercase());
                } else {
                    buf.extend(c.to_lowercase());
                }
            }
        }
        f(buf.as_str());
    }
}

impl Vocabulary {
    /// Rebuild a vocabulary from its tokens in id order (the binary-codec
    /// load path; ids are assigned densely in slice order).
    pub(crate) fn from_id_tokens(tokens: Vec<String>) -> Self {
        let token_to_id = tokens
            .iter()
            .enumerate()
            .map(|(id, t)| (t.clone(), id))
            .collect();
        Vocabulary {
            token_to_id,
            id_to_token: tokens,
        }
    }

    /// Build a vocabulary from an iterator of documents, keeping tokens that
    /// appear at least `min_count` times in total.
    pub fn build<'a>(documents: impl Iterator<Item = &'a str>, min_count: usize) -> Self {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for doc in documents {
            for token in tokenize(doc) {
                *counts.entry(token).or_insert(0) += 1;
            }
        }
        let mut kept: Vec<(String, usize)> = counts
            .into_iter()
            .filter(|(_, c)| *c >= min_count)
            .collect();
        // Sort for determinism (HashMap iteration order is randomised).
        kept.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        let mut vocab = Vocabulary::default();
        for (token, _) in kept {
            let id = vocab.id_to_token.len();
            vocab.token_to_id.insert(token.clone(), id);
            vocab.id_to_token.push(token);
        }
        vocab
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// Look up a token id.
    pub fn id(&self, token: &str) -> Option<usize> {
        self.token_to_id.get(token).copied()
    }

    /// Look up a token by id.
    pub fn token(&self, id: usize) -> Option<&str> {
        self.id_to_token.get(id).map(String::as_str)
    }

    /// Encode a document into known token ids (unknown tokens are dropped).
    pub fn encode(&self, text: &str) -> Vec<usize> {
        tokenize(text)
            .into_iter()
            .filter_map(|t| self.id(&t))
            .collect()
    }

    /// Append the known-token ids of `text` to `out`, reusing `buf` for the
    /// lower-cased token — the streaming counterpart of [`Self::encode`]
    /// (ids are looked up by `&str`, no per-token `String`).
    ///
    /// Feeding a table's cell values through this one by one yields exactly
    /// the ids [`Self::encode`] produces for the concatenated
    /// `Table::as_document` string, because cell boundaries and whitespace
    /// are both token separators.
    pub fn encode_value_into(&self, text: &str, buf: &mut String, out: &mut Vec<usize>) {
        for_each_token_lower(text, buf, |token| {
            if let Some(&id) = self.token_to_id.get(token) {
                out.push(id);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(
            tokenize("Warsaw, 1,777,972"),
            vec!["warsaw", "1", "777", "972"]
        );
        assert!(tokenize("--").is_empty());
    }

    #[test]
    fn build_respects_min_count() {
        let docs = ["rock rock jazz", "rock blues"];
        let vocab = Vocabulary::build(docs.iter().copied(), 2);
        assert!(vocab.id("rock").is_some());
        assert!(vocab.id("jazz").is_none());
        assert!(vocab.id("blues").is_none());
        assert_eq!(vocab.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_round_trip() {
        let docs = ["a b c", "a b", "a"];
        let vocab = Vocabulary::build(docs.iter().copied(), 1);
        assert_eq!(vocab.len(), 3);
        for id in 0..vocab.len() {
            let tok = vocab.token(id).unwrap();
            assert_eq!(vocab.id(tok), Some(id));
        }
        // Most frequent token gets id 0.
        assert_eq!(vocab.token(0), Some("a"));
    }

    #[test]
    fn build_is_deterministic() {
        let docs = ["x y z y", "z z q r s"];
        let a = Vocabulary::build(docs.iter().copied(), 1);
        let b = Vocabulary::build(docs.iter().copied(), 1);
        assert_eq!(a.id_to_token, b.id_to_token);
    }

    #[test]
    fn encode_drops_unknown_tokens() {
        let vocab = Vocabulary::build(["warsaw london"].iter().copied(), 1);
        let ids = vocab.encode("Warsaw unknown London");
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn streaming_tokenizer_matches_tokenize_bit_for_bit() {
        let cases = [
            "Warsaw, 1,777,972",
            "",
            "--",
            "MiXeD CaSe ALLCAPS",
            "Kelvin \u{212A} \u{00C9}clair na\u{00EF}ve",
            // Greek capital sigma: the one context-sensitive lower-case
            // mapping in Unicode (word-final Σ folds to ς, not σ).
            "ΟΔΟΣ Οδός ΣΟΦΙΑ",
            "3.5 MB $12.50",
        ];
        let mut buf = String::new();
        for text in cases {
            let mut streamed = Vec::new();
            for_each_token_lower(text, &mut buf, |t| streamed.push(t.to_string()));
            assert_eq!(streamed, tokenize(text), "tokens diverged on {text:?}");
        }
    }

    #[test]
    fn encode_value_into_matches_encode() {
        let vocab = Vocabulary::build(["warsaw london 12 οδος rock"].iter().copied(), 1);
        let mut buf = String::new();
        for text in ["Warsaw unknown London", "ΟΔΟΣ 12, rock&roll", ""] {
            let mut streamed = Vec::new();
            vocab.encode_value_into(text, &mut buf, &mut streamed);
            assert_eq!(streamed, vocab.encode(text), "ids diverged on {text:?}");
        }
        // Value-by-value streaming equals encoding the joined document.
        let values = ["Warsaw", "", "rock London"];
        let mut streamed = Vec::new();
        for v in values {
            vocab.encode_value_into(v, &mut buf, &mut streamed);
        }
        assert_eq!(streamed, vocab.encode("Warsaw rock London"));
    }

    #[test]
    fn empty_vocabulary() {
        let vocab = Vocabulary::build(std::iter::empty(), 1);
        assert!(vocab.is_empty());
        assert!(vocab.encode("anything").is_empty());
    }
}
