//! Pluggable topic-sampler layer: the strategy that draws the per-token
//! topic assignment inside serving-time Gibbs inference.
//!
//! Serving inference samples each token's topic from the full conditional
//! `p(z = t) ∝ phi_w(t) · (n_{d,t} + α)` against **frozen** topic–word
//! counts (only the document–topic counts change between sweeps). Two
//! strategies implement that draw:
//!
//! * [`TopicSampler::Dense`] — the collapsed dense sweep: recompute all `K`
//!   weights per token, `O(K)` per token. Bit-identical to the historical
//!   implementation; it is the parity oracle every other sampler is
//!   measured against.
//! * [`TopicSampler::SparseAlias`] — a SparseLDA/alias-table hybrid. The
//!   conditional splits into a *static* part `α · phi_w(t)` (frozen, so it
//!   is pre-built into one Walker alias table per word at predictor freeze
//!   time and sampled in `O(1)`) and a *document* part
//!   `n_{d,t} · phi_w(t)` that only ranges over the topics actually
//!   present in the document — `O(k_d)` per token, `k_d ≤ min(len, K)`.
//!   Same target distribution, different floating-point/RNG consumption,
//!   so outputs are statistically close but **not** bit-identical to
//!   Dense.
//! * [`TopicSampler::MetropolisHastings`] — LightLDA-style cycle
//!   Metropolis–Hastings over the same target: each token alternates a
//!   *word proposal* (an `O(1)` alias draw from `q_w ∝ phi_w`, reusing the
//!   same pre-built [`SparseAliasTables`]) with a *doc proposal* (an `O(1)`
//!   draw from `q_d ∝ n_{d,·} + α` taken directly off the assignment
//!   array), each followed by an accept/reject step whose ratio needs only
//!   a handful of multiplies. `O(1)` amortized per token with **no**
//!   per-token walk at all — not even the sparse `O(k_d)` document scan.
//!
//! The sampler is an enum-dispatched strategy (not `dyn`) so the per-token
//! hot loops stay monomorphized; the serialized artifact only records the
//! [`SamplerKind`] and the alias tables are rebuilt at load time.

use crate::lda::LdaModel;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which Gibbs sampler variant serves topic inference. This is the
/// *configuration* side of the sampler layer: it is `Copy`, serializable
/// (stored in predictor artifacts) and turned into a ready-to-run
/// [`TopicSampler`] with [`LdaModel::sampler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SamplerKind {
    /// Exact dense sweep, bit-identical to the historical implementation.
    #[default]
    Dense,
    /// Sparse document part + per-word alias tables for the static part.
    SparseAlias,
    /// LightLDA-style cycle Metropolis–Hastings: alternating word/doc
    /// proposals with `O(1)` accept/reject steps per token.
    MetropolisHastings,
}

impl SamplerKind {
    /// Stable lowercase name (CLI flags, benchmark JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            SamplerKind::Dense => "dense",
            SamplerKind::SparseAlias => "sparse-alias",
            SamplerKind::MetropolisHastings => "mh",
        }
    }
}

/// A ready-to-run topic-sampling strategy: [`SamplerKind`] plus whatever
/// pre-built state the strategy needs. Built once per frozen model (at
/// `into_predictor()` / artifact-load time) with [`LdaModel::sampler`] and
/// shared by reference across serving threads (`Send + Sync`, no interior
/// mutability).
#[derive(Debug, Clone)]
pub enum TopicSampler {
    /// The dense parity oracle (no pre-built state).
    Dense,
    /// Sparse/alias sampling against pre-built per-word tables.
    SparseAlias(Box<SparseAliasTables>),
    /// Cycle Metropolis–Hastings; the word proposal draws from the same
    /// pre-built per-word alias tables as [`TopicSampler::SparseAlias`].
    MetropolisHastings(Box<SparseAliasTables>),
}

impl TopicSampler {
    /// The configuration this strategy was built from.
    pub fn kind(&self) -> SamplerKind {
        match self {
            TopicSampler::Dense => SamplerKind::Dense,
            TopicSampler::SparseAlias(_) => SamplerKind::SparseAlias,
            TopicSampler::MetropolisHastings(_) => SamplerKind::MetropolisHastings,
        }
    }
}

/// The frozen topic–word term of one [`LdaModel`], pre-processed for
/// `O(k_d)`-per-token sampling: word-major `phi`, the static mass
/// `s_w = α · Σ_t phi_w(t)` and one Walker alias table per word over the
/// normalized static distribution.
#[derive(Debug, Clone)]
pub struct SparseAliasTables {
    /// Number of topics.
    k: usize,
    /// Vocabulary size the tables were built for.
    v: usize,
    /// `phi[w * k + t]`: topic–word probability, word-major so one token's
    /// lookups are contiguous.
    phi: Vec<f64>,
    /// Walker acceptance probability per `(word, slot)`.
    alias_prob: Vec<f64>,
    /// Walker alias index per `(word, slot)`.
    alias: Vec<u32>,
    /// `s_w = α · Σ_t phi_w(t)`: total mass of the static part.
    static_mass: Vec<f64>,
}

impl SparseAliasTables {
    /// Pre-build the tables from a trained model (`O(K · V)` time and
    /// space; runs once at predictor freeze/load time, never per token).
    pub fn build(model: &LdaModel) -> Self {
        let k = model.num_topics();
        let v = model.vocabulary().len();
        let alpha = model.config().alpha;
        let mut phi = vec![0.0f64; v * k];
        let mut alias_prob = vec![0.0f64; v * k];
        let mut alias = vec![0u32; v * k];
        let mut static_mass = vec![0.0f64; v];
        // Reusable Walker worklists across words.
        let mut scaled = vec![0.0f64; k];
        let mut small: Vec<u32> = Vec::with_capacity(k);
        let mut large: Vec<u32> = Vec::with_capacity(k);
        for w in 0..v {
            let row = &mut phi[w * k..(w + 1) * k];
            let mut sum = 0.0;
            for (t, p) in row.iter_mut().enumerate() {
                *p = model.phi(t, w);
                sum += *p;
            }
            static_mass[w] = alpha * sum;
            // Walker/Vose construction over p_t = phi_w(t) / sum.
            for (t, s) in scaled.iter_mut().enumerate() {
                *s = row[t] / sum * k as f64;
            }
            small.clear();
            large.clear();
            for t in 0..k as u32 {
                if scaled[t as usize] < 1.0 {
                    small.push(t);
                } else {
                    large.push(t);
                }
            }
            let prob = &mut alias_prob[w * k..(w + 1) * k];
            let idx = &mut alias[w * k..(w + 1) * k];
            while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
                small.pop();
                prob[s as usize] = scaled[s as usize];
                idx[s as usize] = l;
                scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
                if scaled[l as usize] < 1.0 {
                    large.pop();
                    small.push(l);
                }
            }
            // Leftovers on either worklist are full slots (the other list is
            // empty, so their residual mass can only be 1 up to rounding).
            for &t in large.iter().chain(small.iter()) {
                prob[t as usize] = 1.0;
                idx[t as usize] = t;
            }
        }
        SparseAliasTables {
            k,
            v,
            phi,
            alias_prob,
            alias,
            static_mass,
        }
    }

    /// Number of topics the tables were built for.
    pub fn num_topics(&self) -> usize {
        self.k
    }

    /// Vocabulary size the tables were built for.
    pub fn vocab_size(&self) -> usize {
        self.v
    }

    /// Reassemble pre-built tables from their parts (the binary-codec load
    /// path, which is what lets an artifact skip the `O(K·V)` rebuild).
    /// Returns `None` when the buffer shapes are inconsistent or an alias
    /// index is out of range.
    pub(crate) fn from_parts(
        k: usize,
        v: usize,
        phi: Vec<f64>,
        alias_prob: Vec<f64>,
        alias: Vec<u32>,
        static_mass: Vec<f64>,
    ) -> Option<Self> {
        if k == 0
            || phi.len() != v * k
            || alias_prob.len() != v * k
            || alias.len() != v * k
            || static_mass.len() != v
            || alias.iter().any(|&t| t as usize >= k)
        {
            return None;
        }
        Some(SparseAliasTables {
            k,
            v,
            phi,
            alias_prob,
            alias,
            static_mass,
        })
    }

    /// Borrow all parts in [`Self::from_parts`] order (the binary-codec
    /// write path).
    #[allow(clippy::type_complexity)]
    pub(crate) fn parts(&self) -> (usize, usize, &[f64], &[f64], &[u32], &[f64]) {
        (
            self.k,
            self.v,
            &self.phi,
            &self.alias_prob,
            &self.alias,
            &self.static_mass,
        )
    }

    /// Panic unless the tables were built for a model of this shape (they
    /// embed the frozen topic–word term, so they are only valid against the
    /// model that produced them).
    pub(crate) fn assert_matches(&self, k: usize, v: usize) {
        assert_eq!(self.k, k, "sampler built for a different topic count");
        assert_eq!(self.v, v, "sampler built for a different vocabulary");
    }

    /// The contiguous `phi_w(·)` row of one word (hoists the row base out
    /// of the per-topic loop).
    #[inline]
    pub(crate) fn phi_row(&self, word: usize) -> &[f64] {
        &self.phi[word * self.k..(word + 1) * self.k]
    }

    /// Total mass of the static part for `word`.
    #[inline]
    pub(crate) fn static_mass(&self, word: usize) -> f64 {
        self.static_mass[word]
    }

    /// Draw a topic from the static distribution of `word` using a single
    /// unit uniform `x ∈ [0, 1)`: `O(1)` Walker alias lookup.
    #[inline]
    pub(crate) fn sample_alias(&self, word: usize, x: f64) -> usize {
        let scaled = x * self.k as f64;
        let slot = (scaled as usize).min(self.k - 1);
        let frac = scaled - slot as f64;
        let base = word * self.k;
        if frac < self.alias_prob[base + slot] {
            slot
        } else {
            self.alias[base + slot] as usize
        }
    }
}

/// Walk `weights` until the running sum passes `target`, returning the
/// bucket index; if accumulated floating-point rounding keeps the sum from
/// ever reaching `target`, fall back to the **last** bucket.
///
/// This is the single rounding-fallback shared by both samplers: the dense
/// sweep walks all `K` full-conditional weights ([`sample_discrete`]), the
/// sparse sampler walks the `k_d` document-part weights with the branch
/// draw as `target`. `weights` must be non-empty; all-zero weights resolve
/// to the last bucket (nothing compares below a zero weight).
#[inline]
pub(crate) fn pick_bucket(weights: &[f64], target: f64) -> usize {
    let mut target = target;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

/// Sample an index proportionally to `weights` (whose sum is `total`),
/// consuming exactly one uniform draw from `rng`. Shared rounding fallback:
/// see [`pick_bucket`].
#[inline]
pub(crate) fn sample_discrete(weights: &[f64], total: f64, rng: &mut StdRng) -> usize {
    let target = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    pick_bucket(weights, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::LdaConfig;
    use rand::SeedableRng;

    fn themed_documents() -> Vec<String> {
        (0..30)
            .map(|i| {
                if i % 2 == 0 {
                    "rock jazz blues album artist guitar song melody".to_string()
                } else {
                    "warsaw london paris city country europe capital river".to_string()
                }
            })
            .collect()
    }

    #[test]
    fn kind_round_trips_through_json_and_defaults_to_dense() {
        assert_eq!(SamplerKind::default(), SamplerKind::Dense);
        for kind in [
            SamplerKind::Dense,
            SamplerKind::SparseAlias,
            SamplerKind::MetropolisHastings,
        ] {
            let json = serde_json::to_string(&kind).unwrap();
            let back: SamplerKind = serde_json::from_str(&json).unwrap();
            assert_eq!(kind, back);
        }
        assert!(serde_json::from_str::<SamplerKind>("\"Turbo\"").is_err());
        assert_eq!(SamplerKind::Dense.name(), "dense");
        assert_eq!(SamplerKind::SparseAlias.name(), "sparse-alias");
        assert_eq!(SamplerKind::MetropolisHastings.name(), "mh");
    }

    #[test]
    fn pick_bucket_selects_by_cumulative_weight() {
        let weights = [0.25, 0.5, 0.25];
        assert_eq!(pick_bucket(&weights, 0.0), 0);
        assert_eq!(pick_bucket(&weights, 0.2), 0);
        assert_eq!(pick_bucket(&weights, 0.3), 1);
        assert_eq!(pick_bucket(&weights, 0.74), 1);
        assert_eq!(pick_bucket(&weights, 0.8), 2);
    }

    /// The rounding fallback: a target the accumulated weights never reach
    /// (the caller's `total` can exceed the true sum by accumulated ulps)
    /// must resolve to the last bucket instead of running off the end.
    #[test]
    fn pick_bucket_falls_back_to_last_bucket_when_weights_never_reach_target() {
        let weights = [0.3, 0.3, 0.3];
        assert_eq!(pick_bucket(&weights, 0.95), 2);
        assert_eq!(pick_bucket(&weights, f64::MAX), 2);
    }

    /// All-zero weights (a degenerate conditional) must not panic or loop:
    /// no target compares below a zero weight, so the shared fallback
    /// resolves to the last bucket deterministically.
    #[test]
    fn pick_bucket_handles_all_zero_weights() {
        let weights = [0.0, 0.0, 0.0, 0.0];
        assert_eq!(pick_bucket(&weights, 0.0), 3);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(sample_discrete(&weights, 0.0, &mut rng), 3);
        }
    }

    #[test]
    fn sample_discrete_respects_weights_statistically() {
        let weights = [1.0, 3.0, 6.0];
        let total: f64 = weights.iter().sum();
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        let draws = 60_000;
        for _ in 0..draws {
            counts[sample_discrete(&weights, total, &mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let got = counts[i] as f64 / draws as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "bucket {i}: got {got}, expected {expected}"
            );
        }
    }

    /// The Walker alias tables must reproduce the static distribution
    /// `phi_w(t) / Σ_t phi_w(t)` they were built from, word by word.
    #[test]
    fn alias_tables_sample_the_static_distribution() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        let tables = SparseAliasTables::build(&model);
        let k = model.num_topics();
        let mut rng = StdRng::seed_from_u64(23);
        for w in [0usize, 3, model.vocabulary().len() - 1] {
            let sum: f64 = (0..k).map(|t| model.phi(t, w)).sum();
            let mut counts = vec![0usize; k];
            let draws = 40_000;
            for _ in 0..draws {
                counts[tables.sample_alias(w, rng.gen_range(0.0..1.0))] += 1;
            }
            for (t, &c) in counts.iter().enumerate() {
                let expected = model.phi(t, w) / sum;
                let got = c as f64 / draws as f64;
                assert!(
                    (got - expected).abs() < 0.015,
                    "word {w} topic {t}: got {got}, expected {expected}"
                );
            }
        }
    }

    /// The static mass recorded per word is `α · Σ_t phi_w(t)`, and the
    /// alias slot probabilities are a valid Walker table (each slot in
    /// `[0, 1]`, aliases in range).
    #[test]
    fn table_invariants_hold() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        let tables = SparseAliasTables::build(&model);
        let k = model.num_topics();
        let alpha = model.config().alpha;
        for w in 0..model.vocabulary().len() {
            let sum: f64 = (0..k).map(|t| model.phi(t, w)).sum();
            assert!(
                (tables.static_mass(w) - alpha * sum).abs() < 1e-12,
                "static mass of word {w}"
            );
            for t in 0..k {
                assert!((model.phi(t, w) - tables.phi_row(w)[t]).abs() < 1e-15);
                let slot = tables.alias_prob[w * k + t];
                assert!((0.0..=1.0 + 1e-9).contains(&slot), "slot prob {slot}");
                assert!((tables.alias[w * k + t] as usize) < k);
            }
        }
    }

    #[test]
    fn sampler_kind_accessor_matches_strategy() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        assert_eq!(TopicSampler::Dense.kind(), SamplerKind::Dense);
        assert_eq!(
            model.sampler(SamplerKind::SparseAlias).kind(),
            SamplerKind::SparseAlias
        );
        assert_eq!(
            model.sampler(SamplerKind::MetropolisHastings).kind(),
            SamplerKind::MetropolisHastings
        );
        assert!(matches!(
            model.sampler(SamplerKind::Dense),
            TopicSampler::Dense
        ));
    }
}
