//! # sato-topic
//!
//! Topic modelling substrate for the Sato reproduction: a from-scratch
//! Latent Dirichlet Allocation implementation (collapsed Gibbs sampling),
//! the table intent estimator that turns a table's values into a topic
//! vector (Section 3.2 / Figure 3 of the paper), and the topic/type saliency
//! analysis of Section 5.5.
//!
//! ```
//! use sato_tabular::corpus::default_corpus;
//! use sato_topic::{LdaConfig, TableIntentEstimator};
//!
//! let corpus = default_corpus(80, 7);
//! let estimator = TableIntentEstimator::fit(&corpus, LdaConfig::tiny());
//! let theta = estimator.estimate(&corpus.tables[0]);
//! assert_eq!(theta.len(), estimator.num_topics());
//! ```

#![warn(missing_docs)]

pub mod intent;
pub mod lda;
pub mod saliency;
pub mod sampler;
pub mod serialize;
pub mod vocab;

pub use intent::{TableIntentEstimator, TopicScratch};
pub use lda::{LdaConfig, LdaInferScratch, LdaModel};
pub use saliency::{analyze_topics, TopicSummary, TopicTypeAnalysis};
pub use sampler::{SamplerKind, SparseAliasTables, TopicSampler};
pub use serialize::TopicBytesError;
pub use vocab::Vocabulary;
