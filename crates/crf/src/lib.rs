//! # sato-crf
//!
//! A from-scratch linear-chain conditional random field: the structured
//! prediction module of *Sato: Contextual Semantic Type Detection in Tables*
//! (Section 3.3). Provides exact inference on chains (forward–backward for
//! the partition function and marginals, Viterbi for MAP decoding) and
//! maximum-likelihood training of the pairwise potential matrix.
//!
//! ```
//! use sato_crf::LinearChainCrf;
//!
//! // Two labels; the pairwise matrix couples label 1 with label 1.
//! let crf = LinearChainCrf::with_pairwise(2, vec![0.0, 0.0, 0.0, 2.0]);
//! let unary = vec![vec![0.0, 3.0], vec![0.4, 0.0]];
//! // Alone, column 2 would prefer label 0 — context flips it to label 1.
//! assert_eq!(crf.viterbi(&unary), vec![1, 1]);
//! ```

#![warn(missing_docs)]

pub mod chain;
pub mod train;

pub use chain::{argmax, log_sum_exp, LinearChainCrf, Marginals};
pub use train::{train_crf, CrfExample, CrfTrainConfig};
