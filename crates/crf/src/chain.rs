//! The linear-chain conditional random field at the heart of Sato's
//! structured prediction module (Section 3.3).
//!
//! A table with `m` columns is a chain of `m` nodes. Each node carries a
//! *unary potential* vector (the log-scores of the column-wise, topic-aware
//! prediction model) and each edge between adjacent columns carries a shared
//! *pairwise potential* matrix `P` with `P[i][j] = ψ_PAIR(t_i = i, t_j = j)`.
//!
//! The conditional distribution is
//! `P(t | c) ∝ exp( Σ ψ_UNI(t_i, c_i) + Σ ψ_PAIR(t_i, t_{i+1}) )`,
//! the partition function is computed with the forward algorithm in log
//! space, marginals with forward–backward, and the MAP labelling with
//! Viterbi — exactly the machinery the paper describes.

use serde::{Deserialize, Serialize};

/// A linear-chain CRF over `num_states` labels with a shared pairwise
/// potential matrix. Unary potentials are supplied per sequence at call time
/// (they come from the column-wise model), which is why they are not stored
/// on the struct.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearChainCrf {
    num_states: usize,
    /// Row-major `num_states × num_states` pairwise potential matrix (log scale).
    pairwise: Vec<f64>,
}

/// Node and edge marginals of a chain, as produced by forward–backward.
#[derive(Debug, Clone)]
pub struct Marginals {
    /// `node[i][s]`: probability that position `i` has label `s`.
    pub node: Vec<Vec<f64>>,
    /// `edge[i][a * K + b]`: probability that positions `(i, i+1)` have
    /// labels `(a, b)`. Has `m - 1` entries.
    pub edge: Vec<Vec<f64>>,
    /// The log partition function `log Z(c)`.
    pub log_partition: f64,
}

impl LinearChainCrf {
    /// A CRF with all-zero pairwise potentials (equivalent to independent
    /// per-column prediction).
    pub fn new(num_states: usize) -> Self {
        assert!(num_states >= 2, "need at least two states");
        LinearChainCrf {
            num_states,
            pairwise: vec![0.0; num_states * num_states],
        }
    }

    /// A CRF with an explicit pairwise potential matrix (e.g. the log
    /// co-occurrence initialisation of Section 4.3).
    pub fn with_pairwise(num_states: usize, pairwise: Vec<f64>) -> Self {
        assert_eq!(
            pairwise.len(),
            num_states * num_states,
            "pairwise matrix must be {num_states}x{num_states}"
        );
        LinearChainCrf {
            num_states,
            pairwise,
        }
    }

    /// Number of labels.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Borrow the pairwise potential matrix (row-major).
    pub fn pairwise(&self) -> &[f64] {
        &self.pairwise
    }

    /// Mutably borrow the pairwise potential matrix (used by the trainer).
    pub fn pairwise_mut(&mut self) -> &mut [f64] {
        &mut self.pairwise
    }

    /// Pairwise potential of the ordered pair `(a, b)`.
    #[inline]
    pub fn pair(&self, a: usize, b: usize) -> f64 {
        self.pairwise[a * self.num_states + b]
    }

    fn check_unary(&self, unary: &[Vec<f64>]) {
        assert!(!unary.is_empty(), "empty chain");
        assert!(
            unary.iter().all(|u| u.len() == self.num_states),
            "every unary potential must have {} entries",
            self.num_states
        );
    }

    /// Unnormalised log-score of a complete labelling.
    pub fn score(&self, unary: &[Vec<f64>], labels: &[usize]) -> f64 {
        self.check_unary(unary);
        assert_eq!(unary.len(), labels.len(), "one label per position");
        let mut s = 0.0;
        for (u, &l) in unary.iter().zip(labels) {
            s += u[l];
        }
        for w in labels.windows(2) {
            s += self.pair(w[0], w[1]);
        }
        s
    }

    /// One row-major forward DP step: `next[b] = lse_a(alpha[a] + P[a][b])`
    /// for every destination at once, walking the pairwise matrix by
    /// contiguous rows instead of stride-`k` columns. Per destination the
    /// sources are visited in ascending order, so the result is
    /// bit-identical to the historical destination-major loop.
    #[inline]
    fn forward_step(&self, alpha: &[f64], maxes: &mut [f64], acc: &mut [f64]) {
        let k = self.num_states;
        maxes.fill(f64::NEG_INFINITY);
        acc.fill(0.0);
        for (a, &alpha_a) in alpha.iter().enumerate() {
            sato_kernels::max_add_update(alpha_a, &self.pairwise[a * k..(a + 1) * k], maxes);
        }
        for (a, &alpha_a) in alpha.iter().enumerate() {
            sato_kernels::exp_sum_update(alpha_a, &self.pairwise[a * k..(a + 1) * k], maxes, acc);
        }
        sato_kernels::lse_finish(maxes, acc);
    }

    /// `log Z(c)` computed with the forward algorithm in log space.
    pub fn log_partition(&self, unary: &[Vec<f64>]) -> f64 {
        self.check_unary(unary);
        let k = self.num_states;
        let mut alpha: Vec<f64> = unary[0].clone();
        let mut maxes = vec![0.0f64; k];
        let mut next = vec![0.0f64; k];
        for u in &unary[1..] {
            self.forward_step(&alpha, &mut maxes, &mut next);
            for (nb, &ub) in next.iter_mut().zip(u) {
                *nb += ub;
            }
            std::mem::swap(&mut alpha, &mut next);
        }
        log_sum_exp(&alpha)
    }

    /// Log-likelihood of a labelling: `score(t) - log Z(c)`.
    pub fn log_likelihood(&self, unary: &[Vec<f64>], labels: &[usize]) -> f64 {
        self.score(unary, labels) - self.log_partition(unary)
    }

    /// Forward–backward: node and edge marginals plus `log Z`.
    ///
    /// The forward/backward message tables are flat `m × k` buffers (one
    /// allocation each, not one per position).
    pub fn marginals(&self, unary: &[Vec<f64>]) -> Marginals {
        self.check_unary(unary);
        let k = self.num_states;
        let m = unary.len();

        // Reusable max buffer for the row-major forward steps (the naive
        // version allocated a fresh term Vec per (position, state)).
        let mut maxes = vec![0.0f64; k];

        // Forward messages alpha[i * k + s] (log space, including unary of i).
        let mut alpha = vec![0.0f64; m * k];
        alpha[..k].copy_from_slice(&unary[0]);
        for i in 1..m {
            let (prev, cur) = alpha.split_at_mut(i * k);
            let prev = &prev[(i - 1) * k..];
            let cur = &mut cur[..k];
            self.forward_step(prev, &mut maxes, cur);
            for (cur_b, &ub) in cur.iter_mut().zip(&unary[i]) {
                *cur_b += ub;
            }
        }
        // Backward messages beta[i * k + s] (log space, excluding unary of i).
        // For a fixed source `a` the terms `P[a][b] + unary[i+1][b] + next[b]`
        // run over a contiguous pairwise row, which is exactly the fused
        // three-slice log-sum-exp kernel.
        let mut beta = vec![0.0f64; m * k];
        for i in (0..m - 1).rev() {
            let (cur, next) = beta.split_at_mut((i + 1) * k);
            let cur = &mut cur[i * k..];
            let next = &next[..k];
            for (a, cur_a) in cur.iter_mut().enumerate() {
                *cur_a = sato_kernels::log_sum_exp3(
                    &self.pairwise[a * k..(a + 1) * k],
                    &unary[i + 1],
                    next,
                );
            }
        }
        let log_z = log_sum_exp(&alpha[(m - 1) * k..]);

        let node: Vec<Vec<f64>> = (0..m)
            .map(|i| {
                (0..k)
                    .map(|s| (alpha[i * k + s] + beta[i * k + s] - log_z).exp())
                    .collect()
            })
            .collect();

        let edge: Vec<Vec<f64>> = (0..m.saturating_sub(1))
            .map(|i| {
                let mut e = vec![0.0f64; k * k];
                for a in 0..k {
                    for b in 0..k {
                        e[a * k + b] = (alpha[i * k + a]
                            + self.pair(a, b)
                            + unary[i + 1][b]
                            + beta[(i + 1) * k + b]
                            - log_z)
                            .exp();
                    }
                }
                e
            })
            .collect();

        Marginals {
            node,
            edge,
            log_partition: log_z,
        }
    }

    /// Viterbi MAP decoding: the labelling with the highest score.
    pub fn viterbi(&self, unary: &[Vec<f64>]) -> Vec<usize> {
        self.check_unary(unary);
        let k = self.num_states;
        let mut flat = vec![0.0f64; unary.len() * k];
        for (row, u) in flat.chunks_mut(k).zip(unary) {
            row.copy_from_slice(u);
        }
        self.viterbi_flat(&flat)
    }

    /// Viterbi MAP decoding over a flat row-major `m × k` unary buffer —
    /// the serving hot path (no per-position `Vec`s anywhere).
    ///
    /// The relaxation is row-major: each source state relaxes every
    /// destination over a contiguous pairwise row
    /// ([`sato_kernels::relax_max_argmax`]). Sources are visited in
    /// ascending order and ties keep the first winner, so labels — and the
    /// DP table bits — match [`Self::viterbi_flat_reference`] exactly.
    ///
    /// Panics when `unary` is empty or not a multiple of the state count.
    pub fn viterbi_flat(&self, unary: &[f64]) -> Vec<usize> {
        let k = self.num_states;
        assert!(!unary.is_empty(), "empty chain");
        assert_eq!(
            unary.len() % k,
            0,
            "flat unary length must be a multiple of {k}"
        );
        let m = unary.len() / k;
        // DP tables as flat m × k buffers.
        let mut delta = vec![f64::NEG_INFINITY; m * k];
        let mut backptr = vec![0u32; m * k];
        delta[..k].copy_from_slice(&unary[..k]);
        for i in 1..m {
            let (prev, cur) = delta.split_at_mut(i * k);
            let prev = &prev[(i - 1) * k..];
            let cur = &mut cur[..k];
            let bp = &mut backptr[i * k..(i + 1) * k];
            for (a, &prev_a) in prev.iter().enumerate() {
                sato_kernels::relax_max_argmax(
                    prev_a,
                    &self.pairwise[a * k..(a + 1) * k],
                    cur,
                    bp,
                    a as u32,
                );
            }
            for (b, cur_b) in cur.iter_mut().enumerate() {
                *cur_b += unary[i * k + b];
            }
        }
        let mut labels = vec![0usize; m];
        labels[m - 1] = argmax(&delta[(m - 1) * k..]);
        for i in (0..m - 1).rev() {
            labels[i] = backptr[(i + 1) * k + labels[i + 1]] as usize;
        }
        labels
    }

    /// The historical destination-major Viterbi loop (stride-`k` pairwise
    /// reads, per-destination scalar scans). Kept as the parity oracle and
    /// the `table2_efficiency` decode baseline.
    pub fn viterbi_flat_reference(&self, unary: &[f64]) -> Vec<usize> {
        let k = self.num_states;
        assert!(!unary.is_empty(), "empty chain");
        assert_eq!(
            unary.len() % k,
            0,
            "flat unary length must be a multiple of {k}"
        );
        let m = unary.len() / k;
        let mut delta = vec![f64::NEG_INFINITY; m * k];
        let mut backptr = vec![0usize; m * k];
        delta[..k].copy_from_slice(&unary[..k]);
        for i in 1..m {
            let (prev, cur) = delta.split_at_mut(i * k);
            let prev = &prev[(i - 1) * k..];
            let cur = &mut cur[..k];
            for (b, cur_b) in cur.iter_mut().enumerate() {
                let mut best = f64::NEG_INFINITY;
                let mut best_a = 0;
                for (a, &prev_a) in prev.iter().enumerate() {
                    let s = prev_a + self.pair(a, b);
                    if s > best {
                        best = s;
                        best_a = a;
                    }
                }
                *cur_b = best + unary[i * k + b];
                backptr[i * k + b] = best_a;
            }
        }
        let mut labels = vec![0usize; m];
        labels[m - 1] = argmax(&delta[(m - 1) * k..]);
        for i in (0..m - 1).rev() {
            labels[i] = backptr[(i + 1) * k + labels[i + 1]];
        }
        labels
    }
}

/// Numerically stable `log Σ exp(x)` (the chunked kernel form, bit-identical
/// to the historical sequential fold — see `sato_kernels`' exactness
/// contract).
pub fn log_sum_exp(values: &[f64]) -> f64 {
    sato_kernels::log_sum_exp(values)
}

/// Index of the maximum value.
pub fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Enumerate all labellings for brute-force checks.
    fn all_labellings(m: usize, k: usize) -> Vec<Vec<usize>> {
        let mut out = vec![vec![]];
        for _ in 0..m {
            let mut next = Vec::new();
            for prefix in &out {
                for s in 0..k {
                    let mut p = prefix.clone();
                    p.push(s);
                    next.push(p);
                }
            }
            out = next;
        }
        out
    }

    fn sample_crf() -> (LinearChainCrf, Vec<Vec<f64>>) {
        let pairwise = vec![
            0.5, -0.2, 0.1, //
            0.0, 1.0, -0.5, //
            0.3, 0.2, 0.0,
        ];
        let crf = LinearChainCrf::with_pairwise(3, pairwise);
        let unary = vec![
            vec![1.0, 0.2, -0.3],
            vec![0.1, 0.4, 0.5],
            vec![-0.2, 0.9, 0.0],
            vec![0.7, 0.0, 0.3],
        ];
        (crf, unary)
    }

    #[test]
    fn partition_matches_brute_force() {
        let (crf, unary) = sample_crf();
        let brute: f64 = log_sum_exp(
            &all_labellings(unary.len(), 3)
                .iter()
                .map(|l| crf.score(&unary, l))
                .collect::<Vec<_>>(),
        );
        assert!((crf.log_partition(&unary) - brute).abs() < 1e-9);
    }

    #[test]
    fn marginals_match_brute_force() {
        let (crf, unary) = sample_crf();
        let m = crf.marginals(&unary);
        let labellings = all_labellings(unary.len(), 3);
        let log_z = m.log_partition;

        // Node marginal of position 2, state 1.
        let brute: f64 = labellings
            .iter()
            .filter(|l| l[2] == 1)
            .map(|l| (crf.score(&unary, l) - log_z).exp())
            .sum();
        assert!((m.node[2][1] - brute).abs() < 1e-9);

        // Edge marginal of positions (1, 2), states (0, 2).
        let brute_e: f64 = labellings
            .iter()
            .filter(|l| l[1] == 0 && l[2] == 2)
            .map(|l| (crf.score(&unary, l) - log_z).exp())
            .sum();
        assert!((m.edge[1][2] - brute_e).abs() < 1e-9);
    }

    #[test]
    fn node_marginals_sum_to_one() {
        let (crf, unary) = sample_crf();
        let m = crf.marginals(&unary);
        for node in &m.node {
            let s: f64 = node.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        for edge in &m.edge {
            let s: f64 = edge.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn viterbi_matches_brute_force_argmax() {
        let (crf, unary) = sample_crf();
        let best = all_labellings(unary.len(), 3)
            .into_iter()
            .max_by(|a, b| {
                crf.score(&unary, a)
                    .partial_cmp(&crf.score(&unary, b))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(crf.viterbi(&unary), best);
    }

    #[test]
    fn single_column_chain_reduces_to_argmax_of_unary() {
        let crf = LinearChainCrf::new(4);
        let unary = vec![vec![0.1, 2.0, -1.0, 0.5]];
        assert_eq!(crf.viterbi(&unary), vec![1]);
        assert!((crf.log_partition(&unary) - log_sum_exp(&unary[0])).abs() < 1e-12);
    }

    #[test]
    fn zero_pairwise_crf_factorises() {
        // With zero pairwise potentials the chain is a product of independent
        // softmaxes, so Viterbi must equal per-position argmax.
        let crf = LinearChainCrf::new(3);
        let unary = vec![
            vec![3.0, 0.0, 1.0],
            vec![0.0, 0.1, 2.0],
            vec![1.0, 5.0, 0.0],
        ];
        assert_eq!(crf.viterbi(&unary), vec![0, 2, 1]);
    }

    #[test]
    fn pairwise_potentials_can_flip_a_prediction() {
        // The second column weakly prefers state 0, but the pairwise matrix
        // strongly couples state 1 with state 1.
        let mut pairwise = vec![0.0; 4];
        pairwise[3] = 3.0; // entry (1, 1) of the 2x2 matrix
        let crf = LinearChainCrf::with_pairwise(2, pairwise);
        let unary = vec![vec![0.0, 5.0], vec![0.5, 0.0]];
        assert_eq!(crf.viterbi(&unary), vec![1, 1]);
    }

    #[test]
    fn log_likelihood_is_negative_and_maximal_for_map() {
        let (crf, unary) = sample_crf();
        let map = crf.viterbi(&unary);
        let ll_map = crf.log_likelihood(&unary, &map);
        assert!(ll_map < 0.0);
        for l in all_labellings(unary.len(), 3) {
            assert!(crf.log_likelihood(&unary, &l) <= ll_map + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "empty chain")]
    fn empty_chain_panics() {
        let crf = LinearChainCrf::new(2);
        crf.log_partition(&[]);
    }

    #[test]
    fn viterbi_flat_matches_reference_loop() {
        let (crf, unary) = sample_crf();
        let flat: Vec<f64> = unary.iter().flatten().copied().collect();
        assert_eq!(crf.viterbi_flat(&flat), crf.viterbi_flat_reference(&flat));
    }

    #[test]
    fn viterbi_flat_matches_nested_unary() {
        let (crf, unary) = sample_crf();
        let flat: Vec<f64> = unary.iter().flatten().copied().collect();
        assert_eq!(crf.viterbi_flat(&flat), crf.viterbi(&unary));
        // Single-position chain through the flat path.
        assert_eq!(crf.viterbi_flat(&[0.1, 2.0, -1.0]), vec![1]);
    }

    #[test]
    #[should_panic(expected = "empty chain")]
    fn viterbi_flat_rejects_empty_unary() {
        LinearChainCrf::new(2).viterbi_flat(&[]);
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn viterbi_flat_rejects_ragged_unary() {
        LinearChainCrf::new(3).viterbi_flat(&[0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "pairwise matrix")]
    fn wrong_pairwise_size_panics() {
        LinearChainCrf::with_pairwise(3, vec![0.0; 4]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn partition_dominates_any_single_labelling(
            unary in proptest::collection::vec(
                proptest::collection::vec(-5.0f64..5.0, 3), 1..5),
            pairwise in proptest::collection::vec(-2.0f64..2.0, 9),
            labels in proptest::collection::vec(0usize..3, 5),
        ) {
            let crf = LinearChainCrf::with_pairwise(3, pairwise);
            let labels = &labels[..unary.len()];
            let score = crf.score(&unary, labels);
            let log_z = crf.log_partition(&unary);
            prop_assert!(log_z >= score - 1e-9);
        }

        #[test]
        fn viterbi_beats_random_labellings(
            unary in proptest::collection::vec(
                proptest::collection::vec(-5.0f64..5.0, 4), 1..5),
            pairwise in proptest::collection::vec(-2.0f64..2.0, 16),
            labels in proptest::collection::vec(0usize..4, 5),
        ) {
            let crf = LinearChainCrf::with_pairwise(4, pairwise);
            let labels = &labels[..unary.len()];
            let map = crf.viterbi(&unary);
            prop_assert!(crf.score(&unary, &map) >= crf.score(&unary, labels) - 1e-9);
        }

        /// The kernelised row-major decode must agree with the historical
        /// destination-major loop on random chains (exact label equality —
        /// the relaxation is bit-identical, ties included).
        #[test]
        fn kernel_viterbi_matches_reference_on_random_chains(
            unary in proptest::collection::vec(-5.0f64..5.0, 20),
            pairwise in proptest::collection::vec(-2.0f64..2.0, 16),
            m in 1usize..=5,
        ) {
            let crf = LinearChainCrf::with_pairwise(4, pairwise);
            let flat = &unary[..m * 4];
            prop_assert_eq!(crf.viterbi_flat(flat), crf.viterbi_flat_reference(flat));
        }

        #[test]
        fn marginals_are_probabilities(
            unary in proptest::collection::vec(
                proptest::collection::vec(-4.0f64..4.0, 3), 2..5),
            pairwise in proptest::collection::vec(-1.5f64..1.5, 9),
        ) {
            let crf = LinearChainCrf::with_pairwise(3, pairwise);
            let m = crf.marginals(&unary);
            for node in &m.node {
                let s: f64 = node.iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-6);
                prop_assert!(node.iter().all(|&p| (-1e-9..=1.0 + 1e-9).contains(&p)));
            }
        }
    }
}
