//! CRF training: maximise the table-level conditional log-likelihood
//! `log P(t | c)` by gradient ascent on the pairwise potential matrix
//! (Section 3.3, "Learning and prediction"). Unary potentials come from the
//! column-wise model and are treated as fixed inputs, which mirrors how the
//! paper trains the CRF layer after the topic-aware network.
//!
//! The gradient of the log-likelihood with respect to `P[a][b]` is the
//! classic *observed-minus-expected* count of the `(a, b)` transition, where
//! the expectation is taken under the model (edge marginals from
//! forward–backward).

use crate::chain::LinearChainCrf;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One training sequence: per-position unary potentials (log scores) and the
/// gold label of every position.
#[derive(Debug, Clone)]
pub struct CrfExample {
    /// `unary[i][s]`: unary potential of label `s` at position `i`.
    pub unary: Vec<Vec<f64>>,
    /// Gold labels, parallel to `unary`.
    pub labels: Vec<usize>,
}

/// Hyper-parameters for CRF training (the paper trains the CRF layer with
/// Adam, learning rate 1e-2, batches of 10 tables, 15 epochs).
#[derive(Debug, Clone)]
pub struct CrfTrainConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size (tables per update).
    pub batch_size: usize,
    /// L2 regularisation strength on the pairwise potentials.
    pub l2: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for CrfTrainConfig {
    fn default() -> Self {
        CrfTrainConfig {
            learning_rate: 1e-2,
            epochs: 15,
            batch_size: 10,
            l2: 1e-4,
            seed: 17,
        }
    }
}

/// Adam state for the flat pairwise parameter vector.
struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl AdamState {
    fn new(n: usize) -> Self {
        AdamState {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    fn step(&mut self, params: &mut [f64], grad: &[f64], lr: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bias1 = 1.0 - B1.powi(self.t as i32);
        let bias2 = 1.0 - B2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grad[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grad[i] * grad[i];
            let m_hat = self.m[i] / bias1;
            let v_hat = self.v[i] / bias2;
            // Gradient *ascent* on the log-likelihood.
            params[i] += lr * m_hat / (v_hat.sqrt() + EPS);
        }
    }
}

/// Train the pairwise potentials of a CRF on labelled sequences, starting
/// from the given initial model (typically the co-occurrence initialised
/// one). Returns the trained CRF and the mean log-likelihood per epoch.
pub fn train_crf(
    initial: LinearChainCrf,
    examples: &[CrfExample],
    config: &CrfTrainConfig,
) -> (LinearChainCrf, Vec<f64>) {
    let mut crf = initial;
    let k = crf.num_states();
    let usable: Vec<&CrfExample> = examples
        .iter()
        .filter(|e| e.unary.len() >= 2 && e.unary.len() == e.labels.len())
        .collect();
    let mut history = Vec::with_capacity(config.epochs);
    if usable.is_empty() {
        return (crf, history);
    }

    let mut adam = AdamState::new(k * k);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..usable.len()).collect();

    for _epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_ll = 0.0;
        for batch in order.chunks(config.batch_size) {
            let mut grad = vec![0.0f64; k * k];
            for &idx in batch {
                let ex = usable[idx];
                let marginals = crf.marginals(&ex.unary);
                epoch_ll += crf.score(&ex.unary, &ex.labels) - marginals.log_partition;
                // Observed transition counts.
                for w in ex.labels.windows(2) {
                    grad[w[0] * k + w[1]] += 1.0;
                }
                // Expected transition counts.
                for edge in &marginals.edge {
                    for (i, &p) in edge.iter().enumerate() {
                        grad[i] -= p;
                    }
                }
            }
            let scale = 1.0 / batch.len() as f64;
            for (g, p) in grad.iter_mut().zip(crf.pairwise().iter()) {
                *g = *g * scale - config.l2 * p;
            }
            adam.step(crf.pairwise_mut(), &grad, config.learning_rate);
        }
        history.push(epoch_ll / usable.len() as f64);
    }
    (crf, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Build a synthetic task where labels alternate between coupled pairs
    /// (0 follows 1, 2 follows 3) and the unary scores are occasionally
    /// wrong: at a quarter of the positions a random distractor label
    /// out-scores the gold one. Position-independent prediction gets those
    /// positions wrong; the chain context (alternation never crosses a
    /// base pair) is what recovers them — the Table 4 "corrections" story.
    fn synthetic_examples(n: usize, seed: u64) -> Vec<CrfExample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for _ in 0..n {
            let len = rng.gen_range(2..5);
            // Gold sequence alternates 0,1,0,1,... or 2,3,2,3,...
            let base = if rng.gen_bool(0.5) { 0 } else { 2 };
            let labels: Vec<usize> = (0..len).map(|i| base + (i % 2)).collect();
            let unary: Vec<Vec<f64>> = labels
                .iter()
                .map(|&l| {
                    let mut u = vec![0.0f64; 4];
                    u[l] = 1.0;
                    if rng.gen_bool(0.25) {
                        let distractor = (l + rng.gen_range(1..4)) % 4;
                        u[distractor] = 1.2;
                    }
                    u
                })
                .collect();
            out.push(CrfExample { unary, labels });
        }
        out
    }

    #[test]
    fn training_increases_log_likelihood() {
        let examples = synthetic_examples(60, 5);
        let config = CrfTrainConfig {
            epochs: 10,
            ..CrfTrainConfig::default()
        };
        let (_, history) = train_crf(LinearChainCrf::new(4), &examples, &config);
        assert_eq!(history.len(), 10);
        assert!(
            history.last().unwrap() > history.first().unwrap(),
            "log-likelihood did not improve: {history:?}"
        );
    }

    #[test]
    fn trained_crf_learns_transition_structure() {
        let examples = synthetic_examples(80, 7);
        let config = CrfTrainConfig {
            epochs: 20,
            ..CrfTrainConfig::default()
        };
        let (crf, _) = train_crf(LinearChainCrf::new(4), &examples, &config);
        // Transitions 0->1 and 2->3 are observed; 0->3 never is.
        assert!(crf.pair(0, 1) > crf.pair(0, 3));
        assert!(crf.pair(2, 3) > crf.pair(2, 1));
    }

    #[test]
    fn trained_crf_improves_prediction_accuracy_on_ambiguous_unaries() {
        let train = synthetic_examples(80, 11);
        let test = synthetic_examples(30, 12);
        let config = CrfTrainConfig {
            epochs: 20,
            ..CrfTrainConfig::default()
        };
        let untrained = LinearChainCrf::new(4);
        let (trained, _) = train_crf(LinearChainCrf::new(4), &train, &config);

        let accuracy = |crf: &LinearChainCrf| -> f64 {
            let mut correct = 0usize;
            let mut total = 0usize;
            for ex in &test {
                let pred = crf.viterbi(&ex.unary);
                correct += pred.iter().zip(&ex.labels).filter(|(a, b)| a == b).count();
                total += ex.labels.len();
            }
            correct as f64 / total as f64
        };
        let acc_untrained = accuracy(&untrained);
        let acc_trained = accuracy(&trained);
        assert!(
            acc_trained >= acc_untrained,
            "trained {acc_trained} < untrained {acc_untrained}"
        );
        assert!(acc_trained > 0.9, "trained accuracy too low: {acc_trained}");
    }

    #[test]
    fn training_skips_singleton_sequences_gracefully() {
        let examples = vec![CrfExample {
            unary: vec![vec![0.0, 1.0]],
            labels: vec![1],
        }];
        let (crf, history) = train_crf(
            LinearChainCrf::new(2),
            &examples,
            &CrfTrainConfig::default(),
        );
        // No usable (length >= 2) sequences: parameters stay zero.
        assert!(crf.pairwise().iter().all(|&p| p == 0.0));
        assert!(history.is_empty());
    }

    #[test]
    fn l2_regularisation_keeps_potentials_bounded() {
        let examples = synthetic_examples(50, 3);
        let config = CrfTrainConfig {
            epochs: 30,
            l2: 0.5,
            ..CrfTrainConfig::default()
        };
        let (crf, _) = train_crf(LinearChainCrf::new(4), &examples, &config);
        assert!(crf.pairwise().iter().all(|p| p.abs() < 10.0));
    }
}
