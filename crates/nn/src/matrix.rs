//! Dense row-major `f32` matrices and the handful of linear-algebra kernels
//! the feed-forward networks need.
//!
//! The paper's networks are small multi-layer perceptrons, so a
//! straightforward cache-friendly implementation (row-major storage, `ikj`
//! loop order for mat-mul, fused transpose products) is more than fast enough
//! and keeps the crate dependency-free.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Zero-filled matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from an explicit row-major data vector.
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Build from a slice of rows (mostly for tests and doc examples).
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// A 1×n row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Reshape in place to `rows × cols`, reusing the existing allocation
    /// whenever its capacity suffices. Element values are unspecified
    /// afterwards; callers overwrite them.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Make `self` an element-wise copy of `other`, reusing the existing
    /// allocation whenever its capacity suffices.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.resize(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// `self @ other` — standard matrix product.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self @ other`, written into `out` (resized as needed) without
    /// allocating once `out`'s capacity suffices. Produces exactly the
    /// values of [`Matrix::matmul`].
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        out.resize(self.rows, other.cols);
        out.fill(0.0);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                // Skipping exact zeros keeps the sparse one-hot inputs cheap
                // AND preserves bits: an axpy with a == 0.0 could still flip
                // a -0.0 accumulator to +0.0.
                if a == 0.0 {
                    continue;
                }
                sato_kernels::axpy(a, other.row(k), out_row);
            }
        }
    }

    /// `selfᵀ @ other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows,
            other.rows,
            "t_matmul shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                sato_kernels::axpy(a, b_row, out_row);
            }
        }
        out
    }

    /// `self @ otherᵀ` without materialising the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_t shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                out.data[i * other.rows + j] = sato_kernels::dot(a_row, other.row(j));
            }
        }
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise addition (shapes must match).
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// In-place `self += alpha * other`.
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        sato_kernels::axpy(alpha, &other.data, &mut self.data);
    }

    /// Add a 1×cols row vector to every row (broadcast), in place.
    pub fn add_row_broadcast(&mut self, row: &Matrix) {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            sato_kernels::add_assign(&row.data, dst);
        }
    }

    /// Apply a function to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|x| x * alpha)
    }

    /// Column-wise sum, producing a 1×cols row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Column-wise mean, producing a 1×cols row vector.
    pub fn mean_rows(&self) -> Matrix {
        let n = self.rows.max(1) as f32;
        self.sum_rows().scale(1.0 / n)
    }

    /// Horizontally concatenate matrices with equal row counts.
    pub fn hconcat(parts: &[&Matrix]) -> Matrix {
        let mut out = Matrix::default();
        Matrix::hconcat_into(parts, &mut out);
        out
    }

    /// Horizontally concatenate into `out` (resized as needed) without
    /// allocating once `out`'s capacity suffices. Accepts both `&[Matrix]`
    /// and `&[&Matrix]`.
    pub fn hconcat_into<M: std::borrow::Borrow<Matrix>>(parts: &[M], out: &mut Matrix) {
        assert!(!parts.is_empty(), "hconcat of nothing");
        let rows = parts[0].borrow().rows;
        assert!(
            parts.iter().all(|p| p.borrow().rows == rows),
            "hconcat row mismatch"
        );
        let cols: usize = parts.iter().map(|p| p.borrow().cols).sum();
        out.resize(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                let p = p.borrow();
                out.data[r * cols + offset..r * cols + offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
    }

    /// Split a matrix horizontally into chunks of the given widths
    /// (inverse of [`Matrix::hconcat`]).
    pub fn hsplit(&self, widths: &[usize]) -> Vec<Matrix> {
        let total: usize = widths.iter().sum();
        assert_eq!(total, self.cols, "hsplit widths must cover all columns");
        let mut out = Vec::with_capacity(widths.len());
        let mut offset = 0;
        for &w in widths {
            let mut part = Matrix::zeros(self.rows, w);
            for r in 0..self.rows {
                part.row_mut(r)
                    .copy_from_slice(&self.row(r)[offset..offset + w]);
            }
            out.push(part);
            offset += w;
        }
        out
    }

    /// Select a subset of rows (by index) into a new matrix.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn fused_transpose_products_match_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.5], vec![2.0, -1.0]]);
        let expected_t = a.transpose().matmul(&b);
        let got_t = a.t_matmul(&b);
        assert_eq!(expected_t, got_t);

        let c = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, 1.0, 0.0]]);
        let expected = a.matmul(&c.transpose());
        let got = a.matmul_t(&c);
        assert_eq!(expected, got);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn broadcast_add_and_sums() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.add_row_broadcast(&Matrix::row_vector(&[10.0, 20.0]));
        assert_eq!(m.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(m.sum_rows().data(), &[24.0, 46.0]);
        assert!(approx(m.mean_rows().get(0, 0), 12.0));
    }

    #[test]
    fn hconcat_and_hsplit_are_inverses() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0], vec![6.0]]);
        let cat = Matrix::hconcat(&[&a, &b]);
        assert_eq!(cat.shape(), (2, 3));
        let parts = cat.hsplit(&[2, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn select_rows_picks_rows_in_order() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.data(), &[3.0, 1.0]);
    }

    #[test]
    fn map_scale_hadamard_norm() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!(approx(m.norm(), 5.0));
        assert_eq!(m.scale(2.0).data(), &[6.0, 8.0]);
        assert_eq!(m.map(|x| x - 3.0).data(), &[0.0, 1.0]);
        assert_eq!(m.hadamard(&m).data(), &[9.0, 16.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let b = Matrix::from_rows(&[vec![2.0, 4.0]]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_rows(&[vec![1.5, -2.0]]);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
