//! Weight initialisation schemes.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Glorot/Xavier uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suitable for layers followed by
/// saturating or linear activations (and a fine default for small MLPs).
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-a..a))
        .collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

/// He/Kaiming uniform initialisation: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
/// Suitable for ReLU activations, which the paper's primary network uses.
pub fn he_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let a = (6.0 / fan_in as f32).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-a..a))
        .collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_and_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = xavier_uniform(100, 50, &mut rng);
        assert_eq!(w.shape(), (100, 50));
        let a = (6.0f32 / 150.0).sqrt();
        assert!(w.data().iter().all(|&x| x > -a && x < a));
        // Not degenerate: the values should not all be identical.
        assert!(w.data().iter().any(|&x| x != w.data()[0]));
    }

    #[test]
    fn he_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = he_uniform(64, 32, &mut rng);
        let a = (6.0f32 / 64.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() < a));
    }

    #[test]
    fn initialisation_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(
            xavier_uniform(10, 10, &mut a),
            xavier_uniform(10, 10, &mut b)
        );
    }
}
