//! Optimisers: stochastic gradient descent and Adam (the paper trains its
//! networks with Adam, learning rate 1e-4, weight decay 1e-4; Section 4.3).

use crate::layers::Param;

/// Plain SGD with optional L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
}

impl Sgd {
    /// Create an SGD optimiser.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            weight_decay: 0.0,
        }
    }

    /// Apply one update step to the given parameters and reset their
    /// gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            let decay = self.weight_decay;
            for i in 0..p.value.data().len() {
                let g = p.grad.data()[i] + decay * p.value.data()[i];
                p.value.data_mut()[i] -= self.lr * g;
            }
            p.zero_grad();
        }
    }
}

/// Adam optimiser (Kingma & Ba) with decoupled gradient accumulation: call
/// [`Adam::step`] once per mini-batch after the backward pass.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// L2 weight-decay coefficient (the paper uses 1e-4).
    pub weight_decay: f32,
    t: u64,
    state: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Create an Adam optimiser with the paper's defaults except the
    /// learning rate, which differs between the feature network (1e-4) and
    /// the CRF layer (1e-2).
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            state: Vec::new(),
        }
    }

    /// Number of update steps performed so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one Adam step to the given parameters (in a stable order across
    /// calls) and reset their gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.state.len() != params.len() {
            self.state = params
                .iter()
                .map(|p| {
                    let n = p.value.data().len();
                    (vec![0.0; n], vec![0.0; n])
                })
                .collect();
        }
        self.t += 1;
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);

        for (p, (m, v)) in params.iter_mut().zip(self.state.iter_mut()) {
            assert_eq!(
                p.value.data().len(),
                m.len(),
                "parameter shape changed between Adam steps"
            );
            for i in 0..p.value.data().len() {
                let g = p.grad.data()[i] + self.weight_decay * p.value.data()[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = m[i] / bias1;
                let v_hat = v[i] / bias2;
                p.value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn quadratic_param(start: f32) -> Param {
        Param::new(Matrix::row_vector(&[start]))
    }

    /// Minimise f(x) = (x - 3)^2 whose gradient is 2(x - 3).
    fn run_quadratic(optimiser: &mut dyn FnMut(&mut [&mut Param]), steps: usize) -> f32 {
        let mut p = quadratic_param(0.0);
        for _ in 0..steps {
            let x = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * (x - 3.0));
            optimiser(&mut [&mut p]);
        }
        p.value.get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        let x = run_quadratic(&mut |params| sgd.step(params), 200);
        assert!((x - 3.0).abs() < 1e-3, "x={x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.05, 0.0);
        let x = run_quadratic(&mut |params| adam.step(params), 2000);
        assert!((x - 3.0).abs() < 1e-2, "x={x}");
        assert_eq!(adam.steps(), 2000);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut p = quadratic_param(1.0);
        let mut sgd = Sgd::new(0.1);
        sgd.weight_decay = 0.5;
        // Zero task gradient: only the decay term acts.
        for _ in 0..10 {
            p.zero_grad();
            sgd.step(&mut [&mut p]);
        }
        assert!(p.value.get(0, 0) < 1.0);
        assert!(p.value.get(0, 0) > 0.0);
    }

    #[test]
    fn step_resets_gradients() {
        let mut p = quadratic_param(0.0);
        p.grad.set(0, 0, 1.0);
        let mut adam = Adam::new(0.01, 0.0);
        adam.step(&mut [&mut p]);
        assert_eq!(p.grad.get(0, 0), 0.0);
    }

    #[test]
    fn adam_moves_faster_than_tiny_sgd_early_on() {
        let mut adam = Adam::new(0.1, 0.0);
        let xa = run_quadratic(&mut |params| adam.step(params), 50);
        let mut sgd = Sgd::new(0.001);
        let xs = run_quadratic(&mut |params| sgd.step(params), 50);
        assert!((xa - 3.0).abs() < (xs - 3.0).abs());
    }
}
