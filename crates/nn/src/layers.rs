//! Neural network layers: dense (fully connected), ReLU, dropout and batch
//! normalisation — exactly the building blocks of the Sherlock/Sato primary
//! network ("two fully-connected layers (ReLU activation) with BatchNorm and
//! Dropout layers ... before the output layer", Section 3.1).
//!
//! Every layer implements [`Layer`] twice over: the *training* surface
//! (`forward` caches whatever it needs for the corresponding `backward`
//! call, and trainable layers expose their parameters through
//! [`Layer::params_mut`] so an optimiser can update them) and the
//! *inference* surface ([`Layer::infer`]), an immutable evaluation-mode
//! forward pass that caches nothing, treats dropout as the identity and
//! normalises with running batch statistics — so a trained network can be
//! shared across threads (`Layer: Send + Sync`).

use crate::init::he_uniform;
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A trainable parameter: its current value and the gradient accumulated by
/// the latest backward pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter values.
    pub value: Matrix,
    /// Gradient of the loss with respect to `value`.
    pub grad: Matrix,
}

impl Param {
    /// Create a parameter with zeroed gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Param { value, grad }
    }

    /// Reset the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

/// A differentiable network layer.
///
/// `Send + Sync` is part of the contract: a trained layer must be shareable
/// across threads through `&self`, which is what [`Layer::infer`] (and the
/// frozen predictors built on it) rely on.
pub trait Layer: Send + Sync {
    /// Run the layer forward. `training` toggles train-time behaviour
    /// (dropout masks, batch statistics).
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix;

    /// Immutable evaluation-mode forward pass: no activation caching, no RNG
    /// state, dropout as the identity, batch normalisation with running
    /// statistics. Produces exactly the same output as
    /// `forward(input, false)` but never mutates the layer, so it can be
    /// called concurrently on a shared reference.
    fn infer(&self, input: &Matrix) -> Matrix;

    /// Evaluation-mode forward pass into a caller-provided output buffer:
    /// bit-identical to [`Layer::infer`], but `out` is resized in place, so
    /// a warm buffer makes the call allocation-free. This is the building
    /// block of the ping-pong scratch path used by
    /// [`Sequential::infer_with`](crate::network::Sequential::infer_with).
    ///
    /// `input` and `out` must be distinct buffers (guaranteed by the
    /// `&`/`&mut` signature).
    fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        *out = self.infer(input);
    }

    /// Whether the evaluation-mode forward pass is the identity function
    /// (e.g. inverted dropout). The ping-pong scratch path skips such layers
    /// outright instead of copying the activations through them.
    fn infer_is_identity(&self) -> bool {
        false
    }

    /// Back-propagate `grad_output` (dL/d output) and return dL/d input.
    /// Must be called after a `forward` with `training = true`.
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Mutable access to the layer's trainable parameters (empty for
    /// parameter-free layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Shared access to the layer's trainable parameters, in the same order
    /// as [`Layer::params_mut`].
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Shared access to the layer's non-trainable state ("buffers", e.g. the
    /// running statistics of batch normalisation), in a stable order.
    fn buffers(&self) -> Vec<&Vec<f32>> {
        Vec::new()
    }

    /// Mutable access to the layer's buffers, in the same order as
    /// [`Layer::buffers`].
    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        Vec::new()
    }

    /// Human-readable layer name (for debugging and summaries).
    fn name(&self) -> &'static str;

    /// Number of output features given `input_dim` features in.
    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim
    }
}

/// Fully connected layer: `y = x W + b`.
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// Create a dense layer with He-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Dense {
            weight: Param::new(he_uniform(in_dim, out_dim, rng)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        if training {
            self.cached_input = Some(input.clone());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.infer_into(input, &mut out);
        out
    }

    fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        assert_eq!(
            input.cols(),
            self.in_dim(),
            "Dense expected {} input features, got {}",
            self.in_dim(),
            input.cols()
        );
        input.matmul_into(&self.weight.value, out);
        out.add_row_broadcast(&self.bias.value);
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward(training=true)");
        // dW = xᵀ g ; db = Σ rows of g ; dx = g Wᵀ
        self.weight
            .grad
            .add_scaled(&input.t_matmul(grad_output), 1.0);
        self.bias.grad.add_scaled(&grad_output.sum_rows(), 1.0);
        grad_output.matmul_t(&self.weight.value)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn name(&self) -> &'static str {
        "Dense"
    }

    fn output_dim(&self, _input_dim: usize) -> usize {
        self.out_dim()
    }
}

/// Rectified linear unit activation.
#[derive(Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// Create a ReLU activation layer.
    pub fn new() -> Self {
        ReLU { mask: None }
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        if training {
            self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        input.map(|x| x.max(0.0))
    }

    fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        out.resize(input.rows(), input.cols());
        for (o, &x) in out.data_mut().iter_mut().zip(input.data()) {
            *o = x.max(0.0);
        }
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mask = self.mask.as_ref().expect("backward before forward");
        let data = grad_output
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Matrix::from_vec(grad_output.rows(), grad_output.cols(), data)
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

/// Inverted dropout: at training time each activation is zeroed with
/// probability `p` and the survivors are scaled by `1/(1-p)`; at evaluation
/// time the layer is the identity.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Create a dropout layer with drop probability `p` in `[0, 1)`.
    pub fn new(p: f32, rng: StdRng) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0,1)"
        );
        Dropout { p, rng, mask: None }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        if !training || self.p == 0.0 {
            self.mask = None;
            return self.infer(input);
        }
        let keep = 1.0 - self.p;
        let mask: Vec<f32> = (0..input.data().len())
            .map(|_| {
                if self.rng.gen::<f32>() < self.p {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();
        let data = input
            .data()
            .iter()
            .zip(&mask)
            .map(|(&x, &m)| x * m)
            .collect();
        self.mask = Some(mask);
        Matrix::from_vec(input.rows(), input.cols(), data)
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        // Inverted dropout is the identity at evaluation time.
        input.clone()
    }

    fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        // Identity at evaluation time: a buffer copy rather than a clone
        // (and `Sequential::infer_with` skips the layer entirely).
        out.copy_from(input);
    }

    fn infer_is_identity(&self) -> bool {
        true
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        match &self.mask {
            None => grad_output.clone(),
            Some(mask) => {
                let data = grad_output
                    .data()
                    .iter()
                    .zip(mask)
                    .map(|(&g, &m)| g * m)
                    .collect();
                Matrix::from_vec(grad_output.rows(), grad_output.cols(), data)
            }
        }
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

/// 1-D batch normalisation with learnable scale (`gamma`) and shift (`beta`)
/// and running statistics for evaluation mode.
pub struct BatchNorm {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    // Cached values from the training forward pass.
    cache: Option<BatchNormCache>,
}

struct BatchNormCache {
    x_hat: Matrix,
    std_inv: Vec<f32>,
}

impl BatchNorm {
    /// Create a batch-norm layer over `dim` features.
    pub fn new(dim: usize) -> Self {
        BatchNorm {
            gamma: Param::new(Matrix::filled(1, dim, 1.0)),
            beta: Param::new(Matrix::zeros(1, dim)),
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    fn dim(&self) -> usize {
        self.gamma.value.cols()
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        if !(training && input.rows() > 1) {
            // Eval mode (or a batch of one, whose batch variance is
            // degenerate): running statistics only, no cache — exactly the
            // immutable `infer` path, so the two stay bit-for-bit equal.
            self.cache = None;
            return self.infer(input);
        }
        assert_eq!(input.cols(), self.dim(), "BatchNorm feature mismatch");
        let n = input.rows() as f32;
        let dim = self.dim();
        let mean: Vec<f32> = (0..dim)
            .map(|c| (0..input.rows()).map(|r| input.get(r, c)).sum::<f32>() / n)
            .collect();
        let var: Vec<f32> = (0..dim)
            .map(|c| {
                (0..input.rows())
                    .map(|r| {
                        let d = input.get(r, c) - mean[c];
                        d * d
                    })
                    .sum::<f32>()
                    / n
            })
            .collect();
        for c in 0..dim {
            self.running_mean[c] =
                (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
            self.running_var[c] =
                (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
        }

        let std_inv: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut x_hat = Matrix::zeros(input.rows(), dim);
        for r in 0..input.rows() {
            for c in 0..dim {
                x_hat.set(r, c, (input.get(r, c) - mean[c]) * std_inv[c]);
            }
        }
        let mut out = Matrix::zeros(input.rows(), dim);
        for r in 0..input.rows() {
            for c in 0..dim {
                out.set(
                    r,
                    c,
                    x_hat.get(r, c) * self.gamma.value.get(0, c) + self.beta.value.get(0, c),
                );
            }
        }
        self.cache = Some(BatchNormCache { x_hat, std_inv });
        out
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.infer_into(input, &mut out);
        out
    }

    fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        assert_eq!(input.cols(), self.dim(), "BatchNorm feature mismatch");
        let dim = self.dim();
        out.resize(input.rows(), dim);
        // Column-outer so each feature's 1/sqrt(var + eps) is computed once
        // without a temporary std_inv vector.
        for c in 0..dim {
            let std_inv_c = 1.0 / (self.running_var[c] + self.eps).sqrt();
            let mean_c = self.running_mean[c];
            let gamma_c = self.gamma.value.get(0, c);
            let beta_c = self.beta.value.get(0, c);
            for r in 0..input.rows() {
                let x_hat = (input.get(r, c) - mean_c) * std_inv_c;
                out.set(r, c, x_hat * gamma_c + beta_c);
            }
        }
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let cache = match &self.cache {
            Some(c) => c,
            // Batch of one (or eval forward): treat as an affine transform.
            None => {
                let mut grad_in = Matrix::zeros(grad_output.rows(), grad_output.cols());
                for r in 0..grad_output.rows() {
                    for c in 0..grad_output.cols() {
                        let std_inv = 1.0 / (self.running_var[c] + self.eps).sqrt();
                        grad_in.set(
                            r,
                            c,
                            grad_output.get(r, c) * self.gamma.value.get(0, c) * std_inv,
                        );
                    }
                }
                return grad_in;
            }
        };
        let n = grad_output.rows() as f32;
        let dim = self.dim();

        // Parameter gradients.
        for c in 0..dim {
            let mut dgamma = 0.0;
            let mut dbeta = 0.0;
            for r in 0..grad_output.rows() {
                dgamma += grad_output.get(r, c) * cache.x_hat.get(r, c);
                dbeta += grad_output.get(r, c);
            }
            let g = self.gamma.grad.get(0, c) + dgamma;
            self.gamma.grad.set(0, c, g);
            let b = self.beta.grad.get(0, c) + dbeta;
            self.beta.grad.set(0, c, b);
        }

        // Input gradient (standard batch-norm backward formula).
        let mut grad_in = Matrix::zeros(grad_output.rows(), dim);
        for c in 0..dim {
            let gamma = self.gamma.value.get(0, c);
            let sum_dy: f32 = (0..grad_output.rows()).map(|r| grad_output.get(r, c)).sum();
            let sum_dy_xhat: f32 = (0..grad_output.rows())
                .map(|r| grad_output.get(r, c) * cache.x_hat.get(r, c))
                .sum();
            for r in 0..grad_output.rows() {
                let dy = grad_output.get(r, c);
                let x_hat = cache.x_hat.get(r, c);
                let v = gamma * cache.std_inv[c] / n * (n * dy - sum_dy - x_hat * sum_dy_xhat);
                grad_in.set(r, c, v);
            }
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn buffers(&self) -> Vec<&Vec<f32>> {
        vec![&self.running_mean, &self.running_var]
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        vec![&mut self.running_mean, &mut self.running_var]
    }

    fn name(&self) -> &'static str {
        "BatchNorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    /// Numerical gradient check helper for a single-layer scalar loss
    /// `L = sum(forward(x))`.
    fn numeric_grad_input(layer: &mut dyn Layer, x: &Matrix, eps: f32) -> Matrix {
        let mut grad = Matrix::zeros(x.rows(), x.cols());
        for i in 0..x.data().len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp: f32 = layer.forward(&xp, true).data().iter().sum();
            let lm: f32 = layer.forward(&xm, true).data().iter().sum();
            grad.data_mut()[i] = (lp - lm) / (2.0 * eps);
        }
        grad
    }

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut r = rng();
        let mut layer = Dense::new(3, 2, &mut r);
        // Overwrite with known weights for a deterministic check.
        layer.weight.value = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        layer.bias.value = Matrix::row_vector(&[0.5, -0.5]);
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let y = layer.forward(&x, false);
        assert_eq!(y.data(), &[4.5, 4.5]);
        assert_eq!(layer.output_dim(3), 2);
    }

    #[test]
    fn dense_gradients_match_numerical_estimates() {
        let mut r = rng();
        let mut layer = Dense::new(4, 3, &mut r);
        let x = Matrix::from_rows(&[vec![0.5, -1.0, 2.0, 0.1], vec![1.0, 0.3, -0.7, 0.9]]);

        let out = layer.forward(&x, true);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        let analytic = layer.backward(&ones);

        let mut probe = Dense::new(4, 3, &mut rng());
        probe.weight.value = layer.weight.value.clone();
        probe.bias.value = layer.bias.value.clone();
        let numeric = numeric_grad_input(&mut probe, &x, 1e-2);
        for (a, n) in analytic.data().iter().zip(numeric.data()) {
            assert!((a - n).abs() < 1e-2, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn dense_weight_gradient_accumulates() {
        let mut r = rng();
        let mut layer = Dense::new(2, 2, &mut r);
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let g = Matrix::from_rows(&[vec![1.0, 1.0]]);
        layer.forward(&x, true);
        layer.backward(&g);
        layer.forward(&x, true);
        layer.backward(&g);
        // dW for a single example is outer(x, g); accumulated twice.
        assert_eq!(layer.weight.grad.get(0, 0), 2.0);
        assert_eq!(layer.weight.grad.get(1, 1), 4.0);
        assert_eq!(layer.bias.grad.data(), &[2.0, 2.0]);
    }

    #[test]
    fn relu_masks_negative_values_and_gradients() {
        let mut relu = ReLU::new();
        let x = Matrix::from_rows(&[vec![-1.0, 2.0, 0.0]]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0]);
        let g = relu.backward(&Matrix::from_rows(&[vec![5.0, 5.0, 5.0]]));
        assert_eq!(g.data(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn dropout_is_identity_at_eval_and_scales_at_train() {
        let mut d = Dropout::new(0.5, rng());
        let x = Matrix::filled(4, 50, 1.0);
        let eval = d.forward(&x, false);
        assert_eq!(eval, x);
        let train = d.forward(&x, true);
        let zeros = train.data().iter().filter(|&&v| v == 0.0).count();
        let scaled = train
            .data()
            .iter()
            .filter(|&&v| (v - 2.0).abs() < 1e-6)
            .count();
        assert_eq!(zeros + scaled, 200);
        assert!(zeros > 50 && zeros < 150, "zeros={zeros}");
        // Expected value is preserved approximately.
        let mean: f32 = train.data().iter().sum::<f32>() / 200.0;
        assert!((mean - 1.0).abs() < 0.3);
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.3, rng());
        let x = Matrix::filled(1, 100, 1.0);
        let y = d.forward(&x, true);
        let g = d.backward(&Matrix::filled(1, 100, 1.0));
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(yv, gv, "gradient mask must match forward mask");
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn dropout_rejects_invalid_probability() {
        Dropout::new(1.0, rng());
    }

    #[test]
    fn batchnorm_normalises_training_batch() {
        let mut bn = BatchNorm::new(2);
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]);
        let y = bn.forward(&x, true);
        // Each column should have ~zero mean and ~unit variance.
        for c in 0..2 {
            let mean: f32 = (0..3).map(|r| y.get(r, c)).sum::<f32>() / 3.0;
            let var: f32 = (0..3).map(|r| (y.get(r, c) - mean).powi(2)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_statistics() {
        let mut bn = BatchNorm::new(1);
        let x = Matrix::from_rows(&[vec![10.0], vec![20.0], vec![30.0]]);
        for _ in 0..200 {
            bn.forward(&x, true);
        }
        // Running mean should approach 20.
        let y = bn.forward(&Matrix::from_rows(&[vec![20.0]]), false);
        assert!(y.get(0, 0).abs() < 0.2, "eval output {}", y.get(0, 0));
    }

    #[test]
    fn batchnorm_gradient_sums_to_zero_per_feature() {
        // Because the batch mean is subtracted, the input gradients within a
        // feature column must sum to ~0 when gamma multiplies a zero-mean
        // x_hat with symmetric upstream gradient structure.
        let mut bn = BatchNorm::new(2);
        let x = Matrix::from_rows(&[vec![1.0, -4.0], vec![2.0, 0.0], vec![6.0, 4.0]]);
        bn.forward(&x, true);
        let g = bn.backward(&Matrix::from_rows(&[
            vec![0.3, 1.0],
            vec![-0.2, -0.5],
            vec![0.8, 0.1],
        ]));
        for c in 0..2 {
            let s: f32 = (0..3).map(|r| g.get(r, c)).sum();
            assert!(s.abs() < 1e-4, "column {c} grad sum {s}");
        }
    }
}
