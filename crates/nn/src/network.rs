//! Network containers: [`Sequential`] stacks of layers and the
//! [`MultiInputNetwork`] used by Sherlock/Sato, where each feature group
//! passes through its own compression subnetwork before the concatenated
//! representation enters a shared primary network (Section 3.1 / Figure 2).

use crate::layers::{Layer, Param};
use crate::matrix::Matrix;
use crate::serialize::{LoadError, StateDict};

/// Ping-pong workspace for [`Sequential::infer_with`]: two reusable
/// activation buffers that alternate as layer input/output, so an eval-mode
/// forward pass of any depth allocates nothing once the buffers are warm.
#[derive(Default)]
pub struct InferScratch {
    ping: Matrix,
    pong: Matrix,
}

impl InferScratch {
    /// A fresh workspace with empty (but growable) buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Workspace for [`MultiInputNetwork::infer_with`]: per-branch output
/// buffers, the concatenated trunk input, and the ping-pong pair shared by
/// the branch and primary sub-networks.
#[derive(Default)]
pub struct MultiInferScratch {
    branch_out: Vec<Matrix>,
    concat: Matrix,
    seq: InferScratch,
}

impl MultiInferScratch {
    /// A fresh workspace with empty (but growable) buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// An ordered stack of layers applied one after another.
///
/// An empty `Sequential` is the identity function, which is how the `Stat`
/// feature group (only 27 features, no compression subnetwork in the paper)
/// is represented as a branch of the multi-input network.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty (identity) network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Append a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Append a boxed layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers (identity).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names, for summaries.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Snapshot every parameter *and* buffer (running statistics) into a
    /// state dict, so a trained stack round-trips through
    /// [`Self::load_state_dict`] with its evaluation-mode behaviour intact.
    pub fn state_dict(&self) -> StateDict {
        crate::serialize::full_state_dict(&self.params(), &self.buffers())
    }

    /// Load a state dict captured by [`Self::state_dict`] into a
    /// structurally identical stack. All-or-nothing: on error no parameter
    /// or buffer has been modified.
    pub fn load_state_dict(&mut self, state: &StateDict) -> Result<(), LoadError> {
        crate::serialize::validate_state(&self.params(), &self.buffers(), state)?;
        crate::serialize::copy_tensors(&mut self.params_mut(), state);
        crate::serialize::copy_buffers(&mut self.buffers_mut(), state);
        Ok(())
    }

    /// Evaluation-mode forward pass through the stack into `out`, ping-pong
    /// alternating between the two scratch buffers so no per-layer matrix is
    /// allocated (or cloned) once the buffers are warm. Layers whose eval
    /// forward is the identity (dropout) are skipped outright — not even a
    /// buffer copy. Bit-identical to [`Layer::infer`].
    pub fn infer_with(&self, input: &Matrix, scratch: &mut InferScratch, out: &mut Matrix) {
        #[derive(Clone, Copy)]
        enum Src {
            Input,
            Ping,
            Pong,
        }
        let n_active = self
            .layers
            .iter()
            .filter(|l| !l.infer_is_identity())
            .count();
        if n_active == 0 {
            out.copy_from(input);
            return;
        }
        let mut src = Src::Input;
        let mut seen = 0usize;
        for layer in &self.layers {
            if layer.infer_is_identity() {
                continue;
            }
            seen += 1;
            if seen == n_active {
                match src {
                    Src::Input => layer.infer_into(input, out),
                    Src::Ping => layer.infer_into(&scratch.ping, out),
                    Src::Pong => layer.infer_into(&scratch.pong, out),
                }
            } else {
                match src {
                    Src::Input => layer.infer_into(input, &mut scratch.ping),
                    Src::Ping => layer.infer_into(&scratch.ping, &mut scratch.pong),
                    Src::Pong => layer.infer_into(&scratch.pong, &mut scratch.ping),
                }
                src = match src {
                    Src::Input | Src::Pong => Src::Ping,
                    Src::Ping => Src::Pong,
                };
            }
        }
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, training);
        }
        x
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.infer_with(input, &mut InferScratch::new(), &mut out);
        out
    }

    fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        // A transient ping-pong pair; callers wanting a fully warm path use
        // `infer_with` directly.
        self.infer_with(input, &mut InferScratch::new(), out);
    }

    fn infer_is_identity(&self) -> bool {
        self.layers.iter().all(|l| l.infer_is_identity())
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn buffers(&self) -> Vec<&Vec<f32>> {
        self.layers.iter().flat_map(|l| l.buffers()).collect()
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.buffers_mut())
            .collect()
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        self.layers
            .iter()
            .fold(input_dim, |dim, l| l.output_dim(dim))
    }
}

/// The Sherlock/Sato multi-input architecture: one branch subnetwork per
/// feature group, whose outputs are concatenated and fed to a primary
/// network that produces the class logits.
pub struct MultiInputNetwork {
    branches: Vec<Sequential>,
    primary: Sequential,
    last_branch_widths: Vec<usize>,
}

impl MultiInputNetwork {
    /// Build from branch subnetworks (one per input group, identity branches
    /// allowed) and a primary network.
    pub fn new(branches: Vec<Sequential>, primary: Sequential) -> Self {
        assert!(
            !branches.is_empty(),
            "at least one input branch is required"
        );
        MultiInputNetwork {
            branches,
            primary,
            last_branch_widths: Vec::new(),
        }
    }

    /// Number of input groups the network expects.
    pub fn num_inputs(&self) -> usize {
        self.branches.len()
    }

    /// Forward pass over one mini-batch. `inputs[i]` is the matrix for
    /// branch `i`; all inputs must have the same number of rows.
    pub fn forward(&mut self, inputs: &[Matrix], training: bool) -> Matrix {
        assert_eq!(
            inputs.len(),
            self.branches.len(),
            "expected {} input groups, got {}",
            self.branches.len(),
            inputs.len()
        );
        let rows = inputs[0].rows();
        assert!(
            inputs.iter().all(|m| m.rows() == rows),
            "all input groups must have the same batch size"
        );
        let branch_outputs: Vec<Matrix> = self
            .branches
            .iter_mut()
            .zip(inputs)
            .map(|(b, x)| b.forward(x, training))
            .collect();
        self.last_branch_widths = branch_outputs.iter().map(Matrix::cols).collect();
        let concat_refs: Vec<&Matrix> = branch_outputs.iter().collect();
        let concatenated = Matrix::hconcat(&concat_refs);
        self.primary.forward(&concatenated, training)
    }

    /// Immutable evaluation-mode forward pass over one mini-batch: the
    /// shared-reference counterpart of `forward(inputs, false)`, producing
    /// identical output without touching any layer state. Safe to call
    /// concurrently from many threads on the same network.
    pub fn infer(&self, inputs: &[Matrix]) -> Matrix {
        let mut out = Matrix::default();
        self.infer_with(inputs, &mut MultiInferScratch::new(), &mut out);
        out
    }

    /// Evaluation-mode forward pass into `out`, reusing `scratch` for every
    /// intermediate activation (branch outputs, the concatenated trunk
    /// input, the ping-pong pair), so a warm call performs zero heap
    /// allocations. Bit-identical to [`Self::infer`].
    pub fn infer_with(&self, inputs: &[Matrix], scratch: &mut MultiInferScratch, out: &mut Matrix) {
        assert_eq!(
            inputs.len(),
            self.branches.len(),
            "expected {} input groups, got {}",
            self.branches.len(),
            inputs.len()
        );
        let rows = inputs[0].rows();
        assert!(
            inputs.iter().all(|m| m.rows() == rows),
            "all input groups must have the same batch size"
        );
        scratch
            .branch_out
            .resize_with(self.branches.len(), Matrix::default);
        for ((branch, input), branch_out) in self
            .branches
            .iter()
            .zip(inputs)
            .zip(scratch.branch_out.iter_mut())
        {
            branch.infer_with(input, &mut scratch.seq, branch_out);
        }
        Matrix::hconcat_into(&scratch.branch_out, &mut scratch.concat);
        self.primary
            .infer_with(&scratch.concat, &mut scratch.seq, out);
    }

    /// Backward pass; returns the gradient with respect to every input group
    /// (rarely needed, but it makes the container a proper differentiable
    /// unit and is exercised by the tests).
    pub fn backward(&mut self, grad_output: &Matrix) -> Vec<Matrix> {
        let grad_concat = self.primary.backward(grad_output);
        assert!(
            !self.last_branch_widths.is_empty(),
            "backward called before forward"
        );
        let parts = grad_concat.hsplit(&self.last_branch_widths);
        self.branches
            .iter_mut()
            .zip(parts)
            .map(|(b, g)| b.backward(&g))
            .collect()
    }

    /// All trainable parameters (branches first, then the primary network).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params: Vec<&mut Param> = Vec::new();
        for b in &mut self.branches {
            params.extend(b.params_mut());
        }
        params.extend(self.primary.params_mut());
        params
    }

    /// Shared access to all trainable parameters, in [`Self::params_mut`]
    /// order.
    pub fn params(&self) -> Vec<&Param> {
        let mut params: Vec<&Param> = Vec::new();
        for b in &self.branches {
            params.extend(b.params());
        }
        params.extend(self.primary.params());
        params
    }

    /// Shared access to all non-trainable buffers (running statistics), in
    /// the same traversal order as [`Self::params`].
    pub fn buffers(&self) -> Vec<&Vec<f32>> {
        let mut buffers: Vec<&Vec<f32>> = Vec::new();
        for b in &self.branches {
            buffers.extend(b.buffers());
        }
        buffers.extend(self.primary.buffers());
        buffers
    }

    /// Mutable access to all buffers, in [`Self::buffers`] order.
    pub fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut buffers: Vec<&mut Vec<f32>> = Vec::new();
        for b in &mut self.branches {
            buffers.extend(b.buffers_mut());
        }
        buffers.extend(self.primary.buffers_mut());
        buffers
    }

    /// Snapshot the whole multi-input network — every branch and primary
    /// parameter plus every buffer — into one state dict.
    pub fn state_dict(&self) -> StateDict {
        crate::serialize::full_state_dict(&self.params(), &self.buffers())
    }

    /// Load a state dict captured by [`Self::state_dict`]. All-or-nothing:
    /// on error no parameter or buffer has been modified.
    pub fn load_state_dict(&mut self, state: &StateDict) -> Result<(), LoadError> {
        crate::serialize::validate_state(&self.params(), &self.buffers(), state)?;
        crate::serialize::copy_tensors(&mut self.params_mut(), state);
        crate::serialize::copy_buffers(&mut self.buffers_mut(), state);
        Ok(())
    }

    /// Reset all gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, ReLU};
    use crate::loss::softmax_cross_entropy;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut s = Sequential::new();
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert_eq!(s.forward(&x, true), x);
        assert_eq!(s.backward(&x), x);
        assert!(s.is_empty());
        assert_eq!(s.output_dim(2), 2);
    }

    #[test]
    fn sequential_chains_layers_and_reports_dims() {
        let mut r = rng();
        let mut s = Sequential::new()
            .push(Dense::new(4, 8, &mut r))
            .push(ReLU::new())
            .push(Dense::new(8, 3, &mut r));
        assert_eq!(s.len(), 3);
        assert_eq!(s.output_dim(4), 3);
        assert_eq!(s.layer_names(), vec!["Dense", "ReLU", "Dense"]);
        let x = Matrix::from_rows(&[vec![1.0, 0.0, -1.0, 0.5]]);
        let y = s.forward(&x, false);
        assert_eq!(y.shape(), (1, 3));
        assert_eq!(s.params_mut().len(), 4);
    }

    #[test]
    fn sequential_can_learn_xor_like_separation() {
        // Tiny sanity check that forward/backward/optimiser wiring actually
        // reduces the loss on a nonlinear problem.
        let mut r = rng();
        let mut net = Sequential::new()
            .push(Dense::new(2, 16, &mut r))
            .push(ReLU::new())
            .push(Dense::new(16, 2, &mut r));
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = [0usize, 1, 1, 0];
        let mut adam = Adam::new(0.01, 0.0);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..400 {
            let logits = net.forward(&x, true);
            let out = softmax_cross_entropy(&logits, &y);
            net.backward(&out.grad_logits);
            adam.step(&mut net.params_mut());
            first_loss.get_or_insert(out.loss);
            last_loss = out.loss;
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.2,
            "loss did not drop: {last_loss}"
        );
        let logits = net.forward(&x, false);
        let preds = crate::loss::argmax_rows(&logits);
        assert_eq!(preds, vec![0, 1, 1, 0]);
    }

    #[test]
    fn multi_input_network_concatenates_branches() {
        let mut r = rng();
        let branches = vec![
            Sequential::new()
                .push(Dense::new(3, 2, &mut r))
                .push(ReLU::new()),
            Sequential::new(), // identity branch, like the Stat features
        ];
        let primary = Sequential::new().push(Dense::new(2 + 2, 5, &mut r));
        let mut net = MultiInputNetwork::new(branches, primary);
        assert_eq!(net.num_inputs(), 2);
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, 1.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![0.5, -0.5], vec![1.0, 1.0]]);
        let y = net.forward(&[a, b], true);
        assert_eq!(y.shape(), (2, 5));
        let grads = net.backward(&Matrix::filled(2, 5, 1.0));
        assert_eq!(grads.len(), 2);
        assert_eq!(grads[0].shape(), (2, 3));
        assert_eq!(grads[1].shape(), (2, 2));
    }

    #[test]
    #[should_panic(expected = "input groups")]
    fn multi_input_network_checks_group_count() {
        let mut r = rng();
        let mut net = MultiInputNetwork::new(
            vec![Sequential::new().push(Dense::new(2, 2, &mut r))],
            Sequential::new(),
        );
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 2);
        net.forward(&[a, b], false);
    }

    /// Regression test for the eval-mode bug class: a `training: true`
    /// forward leaking into an inference path. With Dropout and BatchNorm in
    /// the stack, a train-mode forward must differ from the evaluation-mode
    /// output, while repeated evaluation-mode calls (both `forward(_, false)`
    /// and the immutable `infer`) are identical to each other and across
    /// repetitions.
    #[test]
    fn train_mode_differs_from_eval_mode_and_eval_is_stable() {
        use crate::layers::{BatchNorm, Dropout};
        use rand::SeedableRng;
        let mut r = rng();
        let mut net = Sequential::new()
            .push(Dense::new(3, 8, &mut r))
            .push(ReLU::new())
            .push(BatchNorm::new(8))
            .push(Dropout::new(0.5, StdRng::seed_from_u64(9)))
            .push(Dense::new(8, 2, &mut r));
        let x = Matrix::from_rows(&[
            vec![1.0, -2.0, 0.5],
            vec![0.0, 1.0, 3.0],
            vec![-1.0, 0.5, 2.0],
        ]);
        // Accumulate some running statistics so eval mode is non-trivial.
        for _ in 0..20 {
            net.forward(&x, true);
        }

        let eval_immutable = net.infer(&x);
        let train = net.forward(&x, true);
        assert_ne!(
            train, eval_immutable,
            "train-mode forward must differ from eval mode (dropout masks, batch statistics)"
        );
        // `forward(_, true)` above moved the running statistics, so compare
        // eval outputs from this point on.
        let eval_a = net.infer(&x);
        let eval_b = net.infer(&x);
        let eval_mut = net.forward(&x, false);
        assert_eq!(eval_a, eval_b, "repeated eval-mode calls must be identical");
        assert_eq!(
            eval_a, eval_mut,
            "infer(&self) must match forward(&mut self, false) bit for bit"
        );
    }

    #[test]
    fn multi_input_infer_matches_eval_forward() {
        let mut r = rng();
        let branches = vec![
            Sequential::new()
                .push(Dense::new(3, 4, &mut r))
                .push(ReLU::new()),
            Sequential::new(),
        ];
        let primary = Sequential::new().push(Dense::new(4 + 2, 5, &mut r));
        let mut net = MultiInputNetwork::new(branches, primary);
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, 1.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![0.5, -0.5], vec![1.0, 1.0]]);
        let from_infer = net.infer(&[a.clone(), b.clone()]);
        let from_forward = net.forward(&[a, b], false);
        assert_eq!(from_infer, from_forward);
    }

    #[test]
    fn multi_input_network_trains_end_to_end() {
        // Learn a task where the answer is only decodable from the *second*
        // input group, verifying gradients flow through the concatenation.
        let mut r = rng();
        let branches = vec![
            Sequential::new()
                .push(Dense::new(2, 4, &mut r))
                .push(ReLU::new()),
            Sequential::new()
                .push(Dense::new(1, 4, &mut r))
                .push(ReLU::new()),
        ];
        let primary = Sequential::new().push(Dense::new(8, 2, &mut r));
        let mut net = MultiInputNetwork::new(branches, primary);

        let noise = Matrix::from_rows(&vec![vec![0.3, 0.3]; 6]);
        let signal = Matrix::from_rows(&[
            vec![0.0],
            vec![1.0],
            vec![0.0],
            vec![1.0],
            vec![0.0],
            vec![1.0],
        ]);
        let targets = [0usize, 1, 0, 1, 0, 1];
        let mut adam = Adam::new(0.05, 0.0);
        for _ in 0..300 {
            let logits = net.forward(&[noise.clone(), signal.clone()], true);
            let out = softmax_cross_entropy(&logits, &targets);
            net.backward(&out.grad_logits);
            adam.step(&mut net.params_mut());
        }
        let logits = net.forward(&[noise, signal], false);
        assert_eq!(crate::loss::argmax_rows(&logits), targets.to_vec());
    }
}
