//! Parameter (de)serialization: extract a network's parameters into a
//! portable "state dict" and load it back into a structurally identical
//! network, mirroring how trained Sato models are shipped and reloaded.
//!
//! A [`StateDict`] carries both trainable parameters (`tensors`) and
//! non-trainable *buffers* (`buffers`, e.g. BatchNorm running statistics),
//! so a whole multi-input network round-trips with its evaluation-mode
//! behaviour intact — see `MultiInputNetwork::state_dict` /
//! `MultiInputNetwork::load_state_dict`.

use crate::layers::Param;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A snapshot of every trainable parameter (and, for full-network captures,
/// every buffer) of a network, in the stable traversal order of `params()` /
/// `buffers()`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDict {
    /// Parameter values, in traversal order.
    pub tensors: Vec<Matrix>,
    /// Non-trainable state (e.g. BatchNorm running mean/variance), in
    /// traversal order. Empty for parameter-only snapshots.
    pub buffers: Vec<Vec<f32>>,
}

/// Error returned when a state dict cannot be loaded into a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The number of tensors differs from the number of parameters.
    CountMismatch {
        /// Parameters in the target network.
        expected: usize,
        /// Tensors in the state dict.
        found: usize,
    },
    /// A tensor's shape differs from the target parameter's shape.
    ShapeMismatch {
        /// Index of the offending parameter.
        index: usize,
        /// Shape of the target parameter.
        expected: (usize, usize),
        /// Shape found in the state dict.
        found: (usize, usize),
    },
    /// The number of buffers differs from the number in the target network.
    BufferCountMismatch {
        /// Buffers in the target network.
        expected: usize,
        /// Buffers in the state dict.
        found: usize,
    },
    /// A buffer's length differs from the target buffer's length.
    BufferLenMismatch {
        /// Index of the offending buffer.
        index: usize,
        /// Length of the target buffer.
        expected: usize,
        /// Length found in the state dict.
        found: usize,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::CountMismatch { expected, found } => {
                write!(
                    f,
                    "state dict has {found} tensors but network has {expected} parameters"
                )
            }
            LoadError::ShapeMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "tensor {index} has shape {found:?} but parameter expects {expected:?}"
            ),
            LoadError::BufferCountMismatch { expected, found } => {
                write!(
                    f,
                    "state dict has {found} buffers but network has {expected}"
                )
            }
            LoadError::BufferLenMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "buffer {index} has length {found} but network expects {expected}"
            ),
        }
    }
}

impl std::error::Error for LoadError {}

/// Capture the current values of the given parameters (no buffers).
pub fn state_dict(params: &[&Param]) -> StateDict {
    StateDict {
        tensors: params.iter().map(|p| p.value.clone()).collect(),
        buffers: Vec::new(),
    }
}

/// Capture parameters *and* buffers, so evaluation-mode state (running
/// batch statistics) survives the round-trip.
pub fn full_state_dict(params: &[&Param], buffers: &[&Vec<f32>]) -> StateDict {
    StateDict {
        tensors: params.iter().map(|p| p.value.clone()).collect(),
        buffers: buffers.iter().map(|b| (*b).clone()).collect(),
    }
}

/// Check tensor count and shapes against the state dict.
fn check_tensors(
    shapes: impl ExactSizeIterator<Item = (usize, usize)>,
    state: &StateDict,
) -> Result<(), LoadError> {
    if shapes.len() != state.tensors.len() {
        return Err(LoadError::CountMismatch {
            expected: shapes.len(),
            found: state.tensors.len(),
        });
    }
    for (i, (expected, t)) in shapes.zip(&state.tensors).enumerate() {
        if expected != t.shape() {
            return Err(LoadError::ShapeMismatch {
                index: i,
                expected,
                found: t.shape(),
            });
        }
    }
    Ok(())
}

/// Check buffer count and lengths against the state dict.
fn check_buffers(
    lens: impl ExactSizeIterator<Item = usize>,
    state: &StateDict,
) -> Result<(), LoadError> {
    if lens.len() != state.buffers.len() {
        return Err(LoadError::BufferCountMismatch {
            expected: lens.len(),
            found: state.buffers.len(),
        });
    }
    for (i, (expected, s)) in lens.zip(&state.buffers).enumerate() {
        if expected != s.len() {
            return Err(LoadError::BufferLenMismatch {
                index: i,
                expected,
                found: s.len(),
            });
        }
    }
    Ok(())
}

/// Check that `state` is loadable into the given parameters and buffers
/// without modifying anything.
pub fn validate_state(
    params: &[&Param],
    buffers: &[&Vec<f32>],
    state: &StateDict,
) -> Result<(), LoadError> {
    check_tensors(params.iter().map(|p| p.value.shape()), state)?;
    check_buffers(buffers.iter().map(|b| b.len()), state)
}

/// Load a parameter-only state dict into the given parameters (shapes must
/// match exactly; any buffers in `state` are ignored).
pub fn load_state_dict(params: &mut [&mut Param], state: &StateDict) -> Result<(), LoadError> {
    check_tensors(params.iter().map(|p| p.value.shape()), state)?;
    copy_tensors(params, state);
    Ok(())
}

/// Copy a validated state dict's tensors into the given parameters. Callers
/// must run [`validate_state`] first; together with [`copy_buffers`] this is
/// the single copy implementation behind `Sequential::load_state_dict` and
/// `MultiInputNetwork::load_state_dict` (two functions rather than one
/// because a network cannot hand out its parameter and buffer views under
/// one `&mut self` borrow).
pub fn copy_tensors(params: &mut [&mut Param], state: &StateDict) {
    for (p, t) in params.iter_mut().zip(&state.tensors) {
        p.value = t.clone();
    }
}

/// Copy a validated state dict's buffers into the given buffer views; see
/// [`copy_tensors`].
pub fn copy_buffers(buffers: &mut [&mut Vec<f32>], state: &StateDict) {
    for (b, s) in buffers.iter_mut().zip(&state.buffers) {
        b.clone_from(s);
    }
}

/// Typed decode errors of the flat [`StateDict`] byte layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateBytesError {
    /// The buffer ended before the named field was fully read.
    Truncated(&'static str),
    /// A structurally invalid payload (overflowing shapes, trailing bytes).
    Corrupt(&'static str),
}

impl std::fmt::Display for StateBytesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateBytesError::Truncated(what) => {
                write!(f, "state dict payload truncated while reading {what}")
            }
            StateBytesError::Corrupt(what) => write!(f, "corrupt state dict payload: {what}"),
        }
    }
}

impl std::error::Error for StateBytesError {}

/// Little-endian field reader over a byte payload.
///
/// Deliberately the same minimal helper as its siblings in `sato-topic`
/// and `sato-core` (the crates cannot share one without a new dependency
/// edge); keep fixes mirrored.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], StateBytesError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(StateBytesError::Truncated(what))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, StateBytesError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn f32_vec(&mut self, len: usize, what: &'static str) -> Result<Vec<f32>, StateBytesError> {
        let bytes = self.take(
            len.checked_mul(4).ok_or(StateBytesError::Corrupt(what))?,
            what,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

fn push_f32s(out: &mut Vec<u8>, values: &[f32]) {
    out.reserve(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

impl StateDict {
    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("state dict serialization cannot fail")
    }

    /// Deserialize from a JSON string.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Append the flat binary form to `out`: tensor count, then per tensor
    /// `rows u32 | cols u32 | rows·cols f32`, then buffer count and per
    /// buffer `len u32 | len f32` — everything little-endian, weight data
    /// laid out exactly as the row-major `Matrix` holds it in memory.
    ///
    /// This is the section payload of the binary predictor artifact; JSON
    /// (above) stays the debug/interchange form and both decode to equal
    /// state dicts.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.tensors.len() as u32).to_le_bytes());
        for t in &self.tensors {
            out.extend_from_slice(&(t.rows() as u32).to_le_bytes());
            out.extend_from_slice(&(t.cols() as u32).to_le_bytes());
            push_f32s(out, t.data());
        }
        out.extend_from_slice(&(self.buffers.len() as u32).to_le_bytes());
        for b in &self.buffers {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            push_f32s(out, b);
        }
    }

    /// Decode a state dict written by [`Self::write_bytes`], bit-identical
    /// to the one that was written.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StateBytesError> {
        let mut r = ByteReader { bytes, pos: 0 };
        let tensor_count = r.u32("tensor count")? as usize;
        let mut tensors = Vec::with_capacity(tensor_count.min(1024));
        for _ in 0..tensor_count {
            let rows = r.u32("tensor rows")? as usize;
            let cols = r.u32("tensor cols")? as usize;
            let len = rows
                .checked_mul(cols)
                .ok_or(StateBytesError::Corrupt("tensor shape overflow"))?;
            let data = r.f32_vec(len, "tensor data")?;
            tensors.push(Matrix::from_vec(rows, cols, data));
        }
        let buffer_count = r.u32("buffer count")? as usize;
        let mut buffers = Vec::with_capacity(buffer_count.min(1024));
        for _ in 0..buffer_count {
            let len = r.u32("buffer length")? as usize;
            buffers.push(r.f32_vec(len, "buffer data")?);
        }
        if r.pos != bytes.len() {
            return Err(StateBytesError::Corrupt("trailing bytes after state dict"));
        }
        Ok(StateDict { tensors, buffers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer, ReLU};
    use crate::network::Sequential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .push(Dense::new(3, 4, &mut rng))
            .push(ReLU::new())
            .push(Dense::new(4, 2, &mut rng))
    }

    #[test]
    fn save_and_load_round_trip() {
        let a = net(1);
        let mut b = net(2);
        let x = crate::matrix::Matrix::from_rows(&[vec![1.0, -0.5, 2.0]]);
        assert_ne!(a.infer(&x), b.infer(&x));

        let state = state_dict(&a.params());
        load_state_dict(&mut b.params_mut(), &state).unwrap();
        assert_eq!(a.infer(&x), b.infer(&x));
    }

    #[test]
    fn json_round_trip_preserves_values() {
        let a = net(3);
        let state = state_dict(&a.params());
        let json = state.to_json();
        let back = StateDict::from_json(&json).unwrap();
        assert_eq!(state, back);
    }

    #[test]
    fn count_mismatch_is_detected() {
        let mut a = net(1);
        let state = StateDict {
            tensors: vec![],
            buffers: vec![],
        };
        let err = load_state_dict(&mut a.params_mut(), &state).unwrap_err();
        assert!(matches!(err, LoadError::CountMismatch { .. }));
        assert!(err.to_string().contains("tensors"));
    }

    #[test]
    fn shape_mismatch_is_detected_and_nothing_is_loaded() {
        let mut a = net(1);
        let mut wrong = state_dict(&a.params());
        wrong.tensors[2] = crate::matrix::Matrix::zeros(10, 10);
        let before = state_dict(&a.params());
        let err = load_state_dict(&mut a.params_mut(), &wrong).unwrap_err();
        assert!(matches!(err, LoadError::ShapeMismatch { index: 2, .. }));
        // The failed load must not have partially overwritten parameters.
        let after = state_dict(&a.params());
        assert_eq!(before, after);
    }

    /// A stack with a BatchNorm layer, whose running statistics only live in
    /// the buffers of a full state dict.
    fn bn_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .push(Dense::new(3, 4, &mut rng))
            .push(crate::layers::BatchNorm::new(4))
            .push(ReLU::new())
            .push(Dense::new(4, 2, &mut rng))
    }

    #[test]
    fn full_state_dict_round_trips_running_statistics() {
        let mut a = bn_net(5);
        let x = crate::matrix::Matrix::from_rows(&[
            vec![1.0, -0.5, 2.0],
            vec![0.0, 3.0, -1.0],
            vec![2.0, 0.5, 0.5],
        ]);
        // Drive the running statistics away from their initial values.
        for _ in 0..50 {
            a.forward(&x, true);
        }
        let state = a.state_dict();
        assert!(!state.buffers.is_empty(), "BatchNorm buffers captured");

        let mut b = bn_net(6);
        b.load_state_dict(&state).unwrap();
        // Evaluation-mode outputs (which depend on the running statistics)
        // must match bit for bit.
        assert_eq!(a.infer(&x), b.infer(&x));
        // And the JSON round-trip preserves the whole thing.
        let back = StateDict::from_json(&state.to_json()).unwrap();
        assert_eq!(state, back);
    }

    #[test]
    fn byte_round_trip_is_bit_identical_and_matches_json() {
        let mut a = bn_net(9);
        let x = crate::matrix::Matrix::from_rows(&[vec![1.0, -0.5, 2.0], vec![0.5, 0.0, -3.0]]);
        for _ in 0..10 {
            a.forward(&x, true);
        }
        let state = a.state_dict();
        let mut bytes = Vec::new();
        state.write_bytes(&mut bytes);
        let back = StateDict::from_bytes(&bytes).unwrap();
        assert_eq!(state, back);
        // Both persistence formats decode to the same state dict.
        assert_eq!(back, StateDict::from_json(&state.to_json()).unwrap());
        // And the binary form is far denser than the JSON text.
        assert!(bytes.len() < state.to_json().len() / 2);
    }

    #[test]
    fn byte_decode_rejects_truncation_and_trailing_garbage() {
        let state = state_dict(&net(4).params());
        let mut bytes = Vec::new();
        state.write_bytes(&mut bytes);
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(
                matches!(
                    StateDict::from_bytes(&bytes[..cut]),
                    Err(StateBytesError::Truncated(_))
                ),
                "cut at {cut} not reported as truncation"
            );
        }
        bytes.push(0xAB);
        assert!(matches!(
            StateDict::from_bytes(&bytes),
            Err(StateBytesError::Corrupt(_))
        ));
    }

    #[test]
    fn buffer_mismatch_is_detected_and_nothing_is_loaded() {
        let mut a = bn_net(7);
        let mut wrong = a.state_dict();
        wrong.buffers[0].push(0.0);
        let before = a.state_dict();
        let err = a.load_state_dict(&wrong).unwrap_err();
        assert!(matches!(err, LoadError::BufferLenMismatch { index: 0, .. }));
        assert_eq!(a.state_dict(), before);

        let mut missing = before.clone();
        missing.buffers.clear();
        let err = a.load_state_dict(&missing).unwrap_err();
        assert!(matches!(err, LoadError::BufferCountMismatch { .. }));
        assert_eq!(a.state_dict(), before);
    }
}
