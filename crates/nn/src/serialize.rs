//! Parameter (de)serialization: extract a network's parameters into a
//! portable "state dict" and load it back into a structurally identical
//! network, mirroring how trained Sato models are shipped and reloaded.

use crate::layers::Param;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A snapshot of every trainable parameter of a network, in the stable
/// traversal order of `params_mut()`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDict {
    /// Parameter values, in traversal order.
    pub tensors: Vec<Matrix>,
}

/// Error returned when a state dict cannot be loaded into a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The number of tensors differs from the number of parameters.
    CountMismatch {
        /// Parameters in the target network.
        expected: usize,
        /// Tensors in the state dict.
        found: usize,
    },
    /// A tensor's shape differs from the target parameter's shape.
    ShapeMismatch {
        /// Index of the offending parameter.
        index: usize,
        /// Shape of the target parameter.
        expected: (usize, usize),
        /// Shape found in the state dict.
        found: (usize, usize),
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::CountMismatch { expected, found } => {
                write!(
                    f,
                    "state dict has {found} tensors but network has {expected} parameters"
                )
            }
            LoadError::ShapeMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "tensor {index} has shape {found:?} but parameter expects {expected:?}"
            ),
        }
    }
}

impl std::error::Error for LoadError {}

/// Capture the current values of the given parameters.
pub fn state_dict(params: &mut [&mut Param]) -> StateDict {
    StateDict {
        tensors: params.iter().map(|p| p.value.clone()).collect(),
    }
}

/// Load a state dict into the given parameters (shapes must match exactly).
pub fn load_state_dict(params: &mut [&mut Param], state: &StateDict) -> Result<(), LoadError> {
    if params.len() != state.tensors.len() {
        return Err(LoadError::CountMismatch {
            expected: params.len(),
            found: state.tensors.len(),
        });
    }
    for (i, (p, t)) in params.iter().zip(&state.tensors).enumerate() {
        if p.value.shape() != t.shape() {
            return Err(LoadError::ShapeMismatch {
                index: i,
                expected: p.value.shape(),
                found: t.shape(),
            });
        }
    }
    for (p, t) in params.iter_mut().zip(&state.tensors) {
        p.value = t.clone();
    }
    Ok(())
}

impl StateDict {
    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("state dict serialization cannot fail")
    }

    /// Deserialize from a JSON string.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer, ReLU};
    use crate::network::Sequential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .push(Dense::new(3, 4, &mut rng))
            .push(ReLU::new())
            .push(Dense::new(4, 2, &mut rng))
    }

    #[test]
    fn save_and_load_round_trip() {
        let mut a = net(1);
        let mut b = net(2);
        let x = crate::matrix::Matrix::from_rows(&[vec![1.0, -0.5, 2.0]]);
        assert_ne!(a.forward(&x, false), b.forward(&x, false));

        let state = state_dict(&mut a.params_mut());
        load_state_dict(&mut b.params_mut(), &state).unwrap();
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn json_round_trip_preserves_values() {
        let mut a = net(3);
        let state = state_dict(&mut a.params_mut());
        let json = state.to_json();
        let back = StateDict::from_json(&json).unwrap();
        assert_eq!(state, back);
    }

    #[test]
    fn count_mismatch_is_detected() {
        let mut a = net(1);
        let state = StateDict { tensors: vec![] };
        let err = load_state_dict(&mut a.params_mut(), &state).unwrap_err();
        assert!(matches!(err, LoadError::CountMismatch { .. }));
        assert!(err.to_string().contains("tensors"));
    }

    #[test]
    fn shape_mismatch_is_detected_and_nothing_is_loaded() {
        let mut a = net(1);
        let mut wrong = state_dict(&mut a.params_mut());
        wrong.tensors[2] = crate::matrix::Matrix::zeros(10, 10);
        let before = state_dict(&mut a.params_mut());
        let err = load_state_dict(&mut a.params_mut(), &wrong).unwrap_err();
        assert!(matches!(err, LoadError::ShapeMismatch { index: 2, .. }));
        // The failed load must not have partially overwritten parameters.
        let after = state_dict(&mut a.params_mut());
        assert_eq!(before, after);
    }
}
