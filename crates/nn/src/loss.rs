//! Softmax activation and the softmax cross-entropy loss used to train the
//! 78-way type classifiers.

use crate::matrix::Matrix;

/// Row-wise numerically stable softmax.
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    softmax_in_place(&mut out);
    out
}

/// Row-wise numerically stable softmax, overwriting the logits in place (no
/// temporary per-row buffers). Bit-identical to [`softmax`].
pub fn softmax_in_place(logits: &mut Matrix) {
    for r in 0..logits.rows() {
        let row = logits.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for x in row.iter_mut() {
            *x = (*x - max).exp();
        }
        let sum: f32 = row.iter().sum();
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

/// Row-wise log-softmax (more stable than `softmax().map(ln)`).
pub fn log_softmax(logits: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let log_sum: f32 = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
        let dst = out.row_mut(r);
        for (d, &x) in dst.iter_mut().zip(row) {
            *d = x - log_sum;
        }
    }
    out
}

/// Result of a softmax cross-entropy evaluation.
#[derive(Debug, Clone)]
pub struct CrossEntropyOutput {
    /// Mean negative log-likelihood over the batch.
    pub loss: f32,
    /// Softmax probabilities (batch × classes).
    pub probabilities: Matrix,
    /// Gradient of the mean loss with respect to the logits.
    pub grad_logits: Matrix,
}

/// Compute the mean softmax cross-entropy of `logits` against integer
/// `targets`, together with the gradient with respect to the logits
/// (`(softmax - one_hot) / batch`).
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[usize]) -> CrossEntropyOutput {
    assert_eq!(
        logits.rows(),
        targets.len(),
        "one target per logits row required"
    );
    let probs = softmax(logits);
    let log_probs = log_softmax(logits);
    let batch = logits.rows() as f32;

    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < logits.cols(), "target {t} out of range");
        loss -= log_probs.get(r, t);
        grad.set(r, t, grad.get(r, t) - 1.0);
    }
    CrossEntropyOutput {
        loss: loss / batch,
        probabilities: probs,
        grad_logits: grad.scale(1.0 / batch),
    }
}

/// Argmax of every row (predicted class indices).
pub fn argmax_rows(scores: &Matrix) -> Vec<usize> {
    (0..scores.rows())
        .map(|r| {
            scores
                .row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let p = softmax(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(r).iter().all(|&x| x > 0.0 && x < 1.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]));
        let b = softmax(&Matrix::from_rows(&[vec![1001.0, 1002.0, 1003.0]]));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_rows(&[vec![20.0, 0.0, 0.0]]);
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.loss < 1e-3);
        // Gradient points towards increasing the correct logit (negative).
        assert!(out.grad_logits.get(0, 0) <= 0.0);
    }

    #[test]
    fn cross_entropy_uniform_prediction_is_log_k() {
        let logits = Matrix::from_rows(&[vec![0.0, 0.0, 0.0, 0.0]]);
        let out = softmax_cross_entropy(&logits, &[2]);
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[vec![0.3, -1.0, 2.0], vec![1.0, 1.0, 1.0]]);
        let out = softmax_cross_entropy(&logits, &[1, 0]);
        for r in 0..2 {
            let s: f32 = out.grad_logits.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_numerical_gradient() {
        let logits = Matrix::from_rows(&[vec![0.5, -0.2, 0.1], vec![1.5, 0.0, -1.0]]);
        let targets = [2usize, 0usize];
        let out = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3;
        for i in 0..logits.data().len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (softmax_cross_entropy(&lp, &targets).loss
                - softmax_cross_entropy(&lm, &targets).loss)
                / (2.0 * eps);
            let ana = out.grad_logits.data()[i];
            assert!((num - ana).abs() < 1e-3, "idx {i}: {num} vs {ana}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_target() {
        let logits = Matrix::from_rows(&[vec![0.0, 0.0]]);
        softmax_cross_entropy(&logits, &[5]);
    }

    #[test]
    fn argmax_rows_finds_maxima() {
        let m = Matrix::from_rows(&[vec![0.1, 0.7, 0.2], vec![0.9, 0.05, 0.05]]);
        assert_eq!(argmax_rows(&m), vec![1, 0]);
    }

    proptest! {
        #[test]
        fn softmax_always_normalises(values in proptest::collection::vec(-50.0f32..50.0, 2..20)) {
            let m = Matrix::row_vector(&values);
            let p = softmax(&m);
            let sum: f32 = p.data().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
        }

        #[test]
        fn log_softmax_is_log_of_softmax(values in proptest::collection::vec(-20.0f32..20.0, 2..10)) {
            let m = Matrix::row_vector(&values);
            let p = softmax(&m);
            let lp = log_softmax(&m);
            for (a, b) in p.data().iter().zip(lp.data()) {
                prop_assert!((a.ln() - b).abs() < 1e-4);
            }
        }
    }
}
