//! # sato-nn
//!
//! A minimal, dependency-light dense neural-network library: exactly the
//! building blocks needed to reproduce the Sherlock/Sato multi-input
//! feed-forward classifiers from *Sato: Contextual Semantic Type Detection
//! in Tables* (VLDB 2020) — dense layers, ReLU, BatchNorm, Dropout, softmax
//! cross-entropy, SGD/Adam, and save/load of trained parameters.
//!
//! Training and inference are distinct API surfaces: `forward`/`backward`
//! take `&mut self` and cache activations for backprop, while
//! [`Layer::infer`] is an immutable (`&self`) evaluation-mode pass — dropout
//! is the identity, BatchNorm uses running statistics, nothing is cached —
//! so a trained network is `Send + Sync` and can serve predictions from
//! many threads at once. A whole network (parameters *and* running
//! statistics) round-trips through [`StateDict`].
//!
//! ## Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use sato_nn::layers::{Dense, Layer, ReLU};
//! use sato_nn::loss::softmax_cross_entropy;
//! use sato_nn::matrix::Matrix;
//! use sato_nn::network::Sequential;
//! use sato_nn::optim::Adam;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Sequential::new()
//!     .push(Dense::new(2, 8, &mut rng))
//!     .push(ReLU::new())
//!     .push(Dense::new(8, 2, &mut rng));
//! let x = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
//! let mut adam = Adam::new(0.01, 0.0);
//! for _ in 0..50 {
//!     let logits = net.forward(&x, true);
//!     let out = softmax_cross_entropy(&logits, &[1, 0]);
//!     net.backward(&out.grad_logits);
//!     adam.step(&mut net.params_mut());
//! }
//! ```

#![warn(missing_docs)]

pub mod init;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod network;
pub mod optim;
pub mod serialize;

pub use layers::{BatchNorm, Dense, Dropout, Layer, Param, ReLU};
pub use loss::{argmax_rows, log_softmax, softmax, softmax_cross_entropy};
pub use matrix::Matrix;
pub use network::{MultiInputNetwork, Sequential};
pub use optim::{Adam, Sgd};
pub use serialize::{
    full_state_dict, load_state_dict, state_dict, validate_state, LoadError, StateBytesError,
    StateDict,
};
