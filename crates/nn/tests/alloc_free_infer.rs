//! Allocation-count regression test for the eval-mode forward pass.
//!
//! The serving hot path relies on `Sequential::infer_with` /
//! `MultiInputNetwork::infer_with` performing **zero** heap allocations once
//! their scratch buffers are warm (no per-layer clones, no per-call
//! temporaries). A counting global allocator makes that a hard assertion
//! rather than a code-review convention.
//!
//! This file deliberately contains a single `#[test]`: the counter is
//! process-global, and a concurrent test would pollute the window between
//! the two counter reads.

use sato_nn::layers::{BatchNorm, Dense, Dropout, Layer, ReLU};
use sato_nn::network::{InferScratch, MultiInferScratch, MultiInputNetwork, Sequential};
use sato_nn::Matrix;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_eval_forward_allocates_nothing() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(11);

    // A stack with every layer kind the Sato networks use.
    let mut stack = Sequential::new()
        .push(Dense::new(6, 16, &mut rng))
        .push(ReLU::new())
        .push(BatchNorm::new(16))
        .push(Dropout::new(0.3, StdRng::seed_from_u64(5)))
        .push(Dense::new(16, 4, &mut rng));
    let x = Matrix::from_rows(&[
        vec![0.5, -1.0, 2.0, 0.1, 0.0, 1.0],
        vec![1.0, 0.3, -0.7, 0.9, 2.0, -1.0],
        vec![0.0, 0.0, 1.0, -1.0, 0.5, 0.5],
    ]);
    // Move the BatchNorm running statistics off their initialisation.
    for _ in 0..5 {
        stack.forward(&x, true);
    }

    let mut scratch = InferScratch::new();
    let mut out = Matrix::default();
    // Warm-up: the first calls size every buffer.
    stack.infer_with(&x, &mut scratch, &mut out);
    stack.infer_with(&x, &mut scratch, &mut out);
    let expected = stack.infer(&x);
    assert_eq!(out, expected, "scratch path must match the allocating path");

    let before = allocation_count();
    for _ in 0..20 {
        stack.infer_with(&x, &mut scratch, &mut out);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm Sequential::infer_with must not allocate (got {} allocations over 20 calls)",
        after - before
    );
    assert_eq!(out, expected);

    // Same contract for the multi-input container (branches + concat +
    // primary trunk).
    let branches = vec![
        Sequential::new()
            .push(Dense::new(3, 8, &mut rng))
            .push(ReLU::new())
            .push(Dropout::new(0.2, StdRng::seed_from_u64(6))),
        Sequential::new(), // identity branch, like the Stat group
    ];
    let primary = Sequential::new()
        .push(Dense::new(8 + 2, 8, &mut rng))
        .push(ReLU::new())
        .push(BatchNorm::new(8))
        .push(Dense::new(8, 5, &mut rng));
    let net = MultiInputNetwork::new(branches, primary);
    let inputs = [
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, 1.0, 0.0]]),
        Matrix::from_rows(&[vec![0.5, -0.5], vec![1.0, 1.0]]),
    ];

    let mut multi_scratch = MultiInferScratch::new();
    let mut multi_out = Matrix::default();
    net.infer_with(&inputs, &mut multi_scratch, &mut multi_out);
    net.infer_with(&inputs, &mut multi_scratch, &mut multi_out);
    let multi_expected = net.infer(&inputs);
    assert_eq!(multi_out, multi_expected);

    let before = allocation_count();
    for _ in 0..20 {
        net.infer_with(&inputs, &mut multi_scratch, &mut multi_out);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm MultiInputNetwork::infer_with must not allocate (got {} allocations over 20 calls)",
        after - before
    );
    assert_eq!(multi_out, multi_expected);
}
