//! Paragraph-embedding features (the paper's **Para** feature group).
//!
//! Sherlock uses a doc2vec model that embeds the *whole column* as one
//! paragraph. The substitution here builds a term-frequency weighted hashed
//! bag-of-ngrams over the entire column text in a dedicated hash space
//! (different seed than the Word group), then L2-normalises it. The result
//! captures column-level co-occurrence information that the per-token Word
//! group does not, which is the role the Para group plays in Sherlock.

use crate::hashing::{fnv1a, l2_normalize, tokenize};
use sato_tabular::table::Column;
use std::collections::HashMap;

/// Hash seed that defines the paragraph-embedding space.
pub const PARA_EMBED_SEED: u64 = 0x5a70_0002;

/// Default paragraph embedding width.
pub const DEFAULT_PARA_DIM: usize = 100;

/// Compute the Para feature group for a column.
///
/// Token counts are dampened with `ln(1 + tf)` before hashing so that a few
/// extremely frequent cell values do not dominate the representation.
pub fn para_features(column: &Column, dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    para_features_into(column, &mut out);
    out
}

/// Compute the Para features into `out` (whose length sets the embedding
/// width).
pub fn para_features_into(column: &Column, out: &mut [f32]) {
    let dim = out.len();
    out.fill(0.0);
    let mut term_freq: HashMap<String, usize> = HashMap::new();
    for cell in column.iter() {
        for token in tokenize(cell) {
            *term_freq.entry(token).or_insert(0) += 1;
        }
    }
    if term_freq.is_empty() {
        return;
    }
    // Accumulate in sorted token order: f32 addition is not associative, so
    // HashMap iteration order would leak into the features (and break
    // bit-for-bit reproducibility of trained models).
    let mut term_freq: Vec<(String, usize)> = term_freq.into_iter().collect();
    term_freq.sort_unstable();
    for (token, tf) in term_freq {
        let h = fnv1a(token.as_bytes(), PARA_EMBED_SEED);
        let bucket = (h % dim as u64) as usize;
        let sign = if (h >> 63) & 1 == 0 { 1.0 } else { -1.0 };
        out[bucket] += sign * (1.0 + tf as f32).ln();
    }
    l2_normalize(out);
}

/// Compute the Para features of an entire table's values — used as the LDA
/// fall-back "table fingerprint" in some ablations and by the BERT-like
/// encoder, which consumes raw value text rather than per-column features.
pub fn table_para_features(columns: &[Column], dim: usize) -> Vec<f32> {
    let mut merged = Column::default();
    for c in columns {
        merged.values.extend(c.values.iter().cloned());
    }
    para_features(&merged, dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::cosine;

    #[test]
    fn dimension_and_normalisation() {
        let col = Column::new(["Rock", "Jazz", "Rock"]);
        let f = para_features(&col, 64);
        assert_eq!(f.len(), 64);
        let norm: f32 = f.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_column_is_zero_vector() {
        let col = Column::new(["", "  "]);
        assert!(para_features(&col, 32).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn repeated_tokens_are_dampened() {
        // A column dominated by one token should still resemble a column
        // containing that token once (direction-wise).
        let once = Column::new(["rock"]);
        let many = Column::new(["rock"; 50]);
        let f_once = para_features(&once, 64);
        let f_many = para_features(&many, 64);
        assert!(cosine(&f_once, &f_many) > 0.99);
    }

    #[test]
    fn different_vocabularies_have_low_similarity() {
        let music = Column::new(["Rock", "Jazz", "Blues", "Folk"]);
        let cities = Column::new(["Warsaw", "London", "Paris", "Rome"]);
        let fm = para_features(&music, 128);
        let fc = para_features(&cities, 128);
        assert!(cosine(&fm, &fc) < 0.3);
    }

    #[test]
    fn para_space_differs_from_word_space() {
        // Same column, same dim: the Para vector must not equal the mean
        // Word vector because the hash seeds differ.
        let col = Column::new(["Warsaw", "London"]);
        let para = para_features(&col, 50);
        let word = crate::word_embed::word_features(&col, 25);
        assert_ne!(para, word[..50].to_vec());
    }

    #[test]
    fn table_features_cover_all_columns() {
        let a = Column::new(["Rock", "Jazz"]);
        let b = Column::new(["Warsaw", "London"]);
        let table = table_para_features(&[a.clone(), b.clone()], 64);
        let fa = para_features(&a, 64);
        let fb = para_features(&b, 64);
        // The table vector should be similar to both column vectors.
        assert!(cosine(&table, &fa) > 0.3);
        assert!(cosine(&table, &fb) > 0.3);
    }
}
