//! Paragraph-embedding features (the paper's **Para** feature group).
//!
//! Sherlock uses a doc2vec model that embeds the *whole column* as one
//! paragraph. The substitution here builds a term-frequency weighted hashed
//! bag-of-ngrams over the entire column text in a dedicated hash space
//! (different seed than the Word group), then L2-normalises it. The result
//! captures column-level co-occurrence information that the per-token Word
//! group does not, which is the role the Para group plays in Sherlock.

use crate::hashing::{fnv1a, for_each_token_lower, l2_normalize};
use crate::scratch::{FeatureScratch, ParaEntry};
use sato_tabular::table::{CellSource, Column};

/// Hash seed that defines the paragraph-embedding space.
pub const PARA_EMBED_SEED: u64 = 0x5a70_0002;

/// Default paragraph embedding width.
pub const DEFAULT_PARA_DIM: usize = 100;

/// Probe stride for open addressing on the term-frequency map key (a 64-bit
/// FNV collision between distinct tokens must not merge their counts).
const PARA_PROBE_STRIDE: u64 = 0x9e37_79b9_7f4a_7c15;

/// Compute the Para feature group for a column.
///
/// Token counts are dampened with `ln(1 + tf)` before hashing so that a few
/// extremely frequent cell values do not dominate the representation.
///
/// Convenience wrapper around [`para_features_into`] that allocates its own
/// workspace; batch callers should reuse a [`FeatureScratch`] instead.
pub fn para_features(column: &Column, dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    para_features_into(column, &mut FeatureScratch::new(), &mut out);
    out
}

/// Compute the Para features into `out` (whose length sets the embedding
/// width), reusing `scratch` for the term-frequency counting state.
pub fn para_features_into<C: CellSource + ?Sized>(
    column: &C,
    scratch: &mut FeatureScratch,
    out: &mut [f32],
) {
    para_features_from_cells(
        (0..column.num_cells()).map(|i| column.cell(i)),
        scratch,
        out,
    );
}

/// The Para core over any stream of cell values: term-frequency counting
/// keyed by the seeded FNV token hash (no per-token `String`, no
/// `HashMap<String, usize>`), with the distinct tokens' lower-cased bytes
/// kept in a reusable arena.
///
/// The drain sorts entries by those token bytes, so the `out[bucket]`
/// accumulation runs in exactly the lexicographic token order of the
/// reference implementation — f32 addition is not associative, and trained
/// artifacts rely on the features staying bit-for-bit identical
/// ([`crate::reference::para_features`] is the oracle).
pub fn para_features_from_cells<'a>(
    cells: impl Iterator<Item = &'a str>,
    scratch: &mut FeatureScratch,
    out: &mut [f32],
) {
    let dim = out.len();
    out.fill(0.0);
    let FeatureScratch {
        para_map,
        para_entries,
        para_arena,
        para_order,
        para_token,
        ..
    } = scratch;
    para_map.clear();
    para_entries.clear();
    para_arena.clear();
    for cell in cells {
        for_each_token_lower(cell, para_token, |token| {
            let bytes = token.as_bytes();
            let hash = fnv1a(bytes, PARA_EMBED_SEED);
            // Open-address on the map key: on the (astronomically rare)
            // 64-bit hash collision between distinct tokens, step to the
            // next key instead of merging their counts.
            let mut key = hash;
            loop {
                match para_map.get(&key) {
                    Some(&idx) => {
                        let entry = &mut para_entries[idx as usize];
                        if &para_arena[entry.start as usize..entry.end as usize] == bytes {
                            entry.tf += 1;
                            break;
                        }
                        key = key.wrapping_add(PARA_PROBE_STRIDE);
                    }
                    None => {
                        let start = para_arena.len() as u32;
                        para_arena.extend_from_slice(bytes);
                        para_map.insert(key, para_entries.len() as u32);
                        para_entries.push(ParaEntry {
                            start,
                            end: para_arena.len() as u32,
                            hash,
                            tf: 1,
                        });
                        break;
                    }
                }
            }
        });
    }
    if para_entries.is_empty() {
        return;
    }
    // Accumulate in sorted token order: f32 addition is not associative, so
    // map iteration order would leak into the features (and break
    // bit-for-bit reproducibility of trained models).
    para_order.clear();
    para_order.extend(0..para_entries.len() as u32);
    para_order.sort_unstable_by(|&a, &b| {
        let ea = &para_entries[a as usize];
        let eb = &para_entries[b as usize];
        para_arena[ea.start as usize..ea.end as usize]
            .cmp(&para_arena[eb.start as usize..eb.end as usize])
    });
    for &i in para_order.iter() {
        let entry = &para_entries[i as usize];
        let bucket = (entry.hash % dim as u64) as usize;
        let sign = if (entry.hash >> 63) & 1 == 0 {
            1.0
        } else {
            -1.0
        };
        out[bucket] += sign * (1.0 + entry.tf as f32).ln();
    }
    l2_normalize(out);
}

/// Compute the Para features of an entire table's values — used as the LDA
/// fall-back "table fingerprint" in some ablations and by the BERT-like
/// encoder, which consumes raw value text rather than per-column features.
///
/// Iterates the columns' values directly (no merged-column clone of every
/// cell); bit-identical to running [`para_features`] on the concatenation.
pub fn table_para_features(columns: &[Column], dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    para_features_from_cells(
        columns.iter().flat_map(|c| c.iter()),
        &mut FeatureScratch::new(),
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::cosine;

    #[test]
    fn dimension_and_normalisation() {
        let col = Column::new(["Rock", "Jazz", "Rock"]);
        let f = para_features(&col, 64);
        assert_eq!(f.len(), 64);
        let norm: f32 = f.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_column_is_zero_vector() {
        let col = Column::new(["", "  "]);
        assert!(para_features(&col, 32).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn repeated_tokens_are_dampened() {
        // A column dominated by one token should still resemble a column
        // containing that token once (direction-wise).
        let once = Column::new(["rock"]);
        let many = Column::new(["rock"; 50]);
        let f_once = para_features(&once, 64);
        let f_many = para_features(&many, 64);
        assert!(cosine(&f_once, &f_many) > 0.99);
    }

    #[test]
    fn different_vocabularies_have_low_similarity() {
        let music = Column::new(["Rock", "Jazz", "Blues", "Folk"]);
        let cities = Column::new(["Warsaw", "London", "Paris", "Rome"]);
        let fm = para_features(&music, 128);
        let fc = para_features(&cities, 128);
        assert!(cosine(&fm, &fc) < 0.3);
    }

    #[test]
    fn para_space_differs_from_word_space() {
        // Same column, same dim: the Para vector must not equal the mean
        // Word vector because the hash seeds differ.
        let col = Column::new(["Warsaw", "London"]);
        let para = para_features(&col, 50);
        let word = crate::word_embed::word_features(&col, 25);
        assert_ne!(para, word[..50].to_vec());
    }

    #[test]
    fn table_features_cover_all_columns() {
        let a = Column::new(["Rock", "Jazz"]);
        let b = Column::new(["Warsaw", "London"]);
        let table = table_para_features(&[a.clone(), b.clone()], 64);
        let fa = para_features(&a, 64);
        let fb = para_features(&b, 64);
        // The table vector should be similar to both column vectors.
        assert!(cosine(&table, &fa) > 0.3);
        assert!(cosine(&table, &fb) > 0.3);
    }
}
