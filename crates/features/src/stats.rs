//! Global column statistics (the paper's **Stat** feature group).
//!
//! Sherlock complements the distributional features with 27 hand-crafted
//! global statistics per column (value counts, uniqueness, length and
//! numeric-value statistics, …). This module computes an analogous set of
//! exactly 27 statistics; the paper notes these are passed to the primary
//! network directly, without a compression subnetwork, because of their low
//! dimensionality.

use sato_tabular::table::Column;

/// Number of statistics in the Stat group (kept at the paper's 27).
pub const STAT_FEATURE_DIM: usize = 27;

/// Compute the 27 global statistics of a column.
pub fn stat_features(column: &Column) -> Vec<f32> {
    let total = column.values.len();
    let non_empty: Vec<&str> = column
        .values
        .iter()
        .map(String::as_str)
        .filter(|v| !v.trim().is_empty())
        .collect();
    let n = non_empty.len();

    let mut out = vec![0.0f32; STAT_FEATURE_DIM];
    out[0] = total as f32;
    out[1] = n as f32;
    out[2] = if total > 0 {
        1.0 - n as f32 / total as f32
    } else {
        0.0
    }; // fraction missing
    if n == 0 {
        return out;
    }

    // Distinctness.
    let mut distinct: Vec<&str> = non_empty.clone();
    distinct.sort_unstable();
    distinct.dedup();
    out[3] = distinct.len() as f32;
    out[4] = distinct.len() as f32 / n as f32; // fraction unique

    // Length statistics (in characters).
    let lengths: Vec<f32> = non_empty.iter().map(|v| v.chars().count() as f32).collect();
    let (len_mean, len_std, len_min, len_max) = moments(&lengths);
    out[5] = len_mean;
    out[6] = len_std;
    out[7] = len_min;
    out[8] = len_max;

    // Token statistics (words per cell).
    let token_counts: Vec<f32> = non_empty
        .iter()
        .map(|v| v.split_whitespace().count() as f32)
        .collect();
    let (tok_mean, tok_std, tok_min, tok_max) = moments(&token_counts);
    out[9] = tok_mean;
    out[10] = tok_std;
    out[11] = tok_min;
    out[12] = tok_max;

    // Character-class fractions (cell level).
    let frac = |pred: &dyn Fn(&str) -> bool| {
        non_empty.iter().filter(|v| pred(v)).count() as f32 / n as f32
    };
    out[13] = frac(&|v| {
        v.chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == ',' || c == '-')
    });
    out[14] = frac(&|v| v.chars().any(|c| c.is_ascii_digit()));
    out[15] = frac(&|v| v.chars().all(|c| c.is_alphabetic() || c.is_whitespace()));
    out[16] = frac(&|v| v.chars().any(|c| c.is_uppercase()));
    out[17] = frac(&|v| v.contains(' '));
    out[18] = frac(&|v| v.contains(|c: char| !c.is_alphanumeric() && !c.is_whitespace()));

    // Numeric value statistics (over parseable cells).
    let numeric: Vec<f32> = non_empty.iter().filter_map(|v| parse_numeric(v)).collect();
    out[19] = numeric.len() as f32 / n as f32; // fraction numeric-parseable
    if !numeric.is_empty() {
        let (num_mean, num_std, num_min, num_max) = moments(&numeric);
        out[20] = num_mean;
        out[21] = num_std;
        out[22] = num_min;
        out[23] = num_max;
        out[24] = numeric.iter().filter(|&&x| x < 0.0).count() as f32 / numeric.len() as f32;
        out[25] =
            numeric.iter().filter(|&&x| x.fract() != 0.0).count() as f32 / numeric.len() as f32;
    }
    // Mean digit fraction per cell.
    out[26] = non_empty
        .iter()
        .map(|v| {
            let chars = v.chars().count().max(1) as f32;
            v.chars().filter(|c| c.is_ascii_digit()).count() as f32 / chars
        })
        .sum::<f32>()
        / n as f32;
    out
}

/// Parse a cell into a number, tolerating thousands separators, currency-ish
/// prefixes and unit suffixes ("1,777,972", "35 kg", "4.2 MB").
fn parse_numeric(v: &str) -> Option<f32> {
    let cleaned: String = v
        .chars()
        .filter(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    if cleaned.is_empty() || !v.chars().any(|c| c.is_ascii_digit()) {
        return None;
    }
    // Only treat as numeric if digits form a substantial part of the cell.
    let digits = v.chars().filter(|c| c.is_ascii_digit()).count();
    if (digits as f32) < 0.4 * v.chars().filter(|c| !c.is_whitespace()).count() as f32 {
        return None;
    }
    cleaned.parse::<f32>().ok()
}

fn moments(values: &[f32]) -> (f32, f32, f32, f32) {
    let n = values.len() as f32;
    let mean = values.iter().sum::<f32>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    (mean, var.sqrt(), min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_27_statistics() {
        let col = Column::new(["a", "b"]);
        assert_eq!(stat_features(&col).len(), 27);
        assert_eq!(STAT_FEATURE_DIM, 27);
    }

    #[test]
    fn empty_column_reports_counts_only() {
        let col = Column::new(["", ""]);
        let f = stat_features(&col);
        assert_eq!(f[0], 2.0);
        assert_eq!(f[1], 0.0);
        assert_eq!(f[2], 1.0);
        assert!(f[3..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn uniqueness_and_lengths() {
        let col = Column::new(["aa", "aa", "bbbb"]);
        let f = stat_features(&col);
        assert_eq!(f[3], 2.0); // distinct
        assert!((f[4] - 2.0 / 3.0).abs() < 1e-6);
        assert!((f[5] - (2.0 + 2.0 + 4.0) / 3.0).abs() < 1e-6);
        assert_eq!(f[7], 2.0);
        assert_eq!(f[8], 4.0);
    }

    #[test]
    fn numeric_statistics_for_number_columns() {
        let col = Column::new(["10", "20", "30"]);
        let f = stat_features(&col);
        assert_eq!(f[19], 1.0); // all numeric
        assert!((f[20] - 20.0).abs() < 1e-4);
        assert_eq!(f[22], 10.0);
        assert_eq!(f[23], 30.0);
        assert_eq!(f[13], 1.0); // all-digit cells
    }

    #[test]
    fn formatted_numbers_are_recognised() {
        let col = Column::new(["1,777,972", "380,948"]);
        let f = stat_features(&col);
        assert_eq!(f[19], 1.0);
        assert!(f[23] > 1_000_000.0);
    }

    #[test]
    fn unit_suffixed_numbers_are_numeric() {
        let col = Column::new(["75 kg", "82 kg"]);
        let f = stat_features(&col);
        assert!(f[19] > 0.9);
    }

    #[test]
    fn text_columns_have_low_numeric_fraction() {
        let col = Column::new(["Warsaw", "London", "Paris"]);
        let f = stat_features(&col);
        assert_eq!(f[19], 0.0);
        assert_eq!(f[15], 1.0); // purely alphabetic
        assert_eq!(f[26], 0.0);
    }

    #[test]
    fn text_and_numbers_produce_different_vectors() {
        let text = stat_features(&Column::new(["alpha", "beta", "gamma"]));
        let nums = stat_features(&Column::new(["1", "2", "3"]));
        assert_ne!(text, nums);
    }

    #[test]
    fn negative_and_fractional_flags() {
        let col = Column::new(["-1.5", "2.25", "3"]);
        let f = stat_features(&col);
        assert!((f[24] - 1.0 / 3.0).abs() < 1e-6);
        assert!((f[25] - 2.0 / 3.0).abs() < 1e-6);
    }
}
