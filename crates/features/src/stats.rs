//! Global column statistics (the paper's **Stat** feature group).
//!
//! Sherlock complements the distributional features with 27 hand-crafted
//! global statistics per column (value counts, uniqueness, length and
//! numeric-value statistics, …). This module computes an analogous set of
//! exactly 27 statistics; the paper notes these are passed to the primary
//! network directly, without a compression subnetwork, because of their low
//! dimensionality.

use crate::scratch::{
    FeatureScratch, FLAG_ALL_ALPHA_WS, FLAG_ALL_NUMISH, FLAG_ANY_DIGIT, FLAG_ANY_SPECIAL,
    FLAG_ANY_UPPER, FLAG_HAS_SPACE,
};
use sato_tabular::table::{CellSource, Column};

/// Number of statistics in the Stat group (kept at the paper's 27).
pub const STAT_FEATURE_DIM: usize = 27;

/// Compute the 27 global statistics of a column.
///
/// Convenience wrapper around [`stat_features_into`] that allocates its own
/// workspace; batch callers should reuse a [`FeatureScratch`] instead.
pub fn stat_features(column: &Column) -> Vec<f32> {
    let mut out = vec![0.0f32; STAT_FEATURE_DIM];
    let mut scratch = FeatureScratch::new();
    scratch.scan(column);
    stat_features_from_scan(column, &mut scratch, &mut out);
    out
}

/// Compute the Stat features into `out` (length [`STAT_FEATURE_DIM`]),
/// reusing `scratch` for the single cell pass.
pub fn stat_features_into(column: &Column, scratch: &mut FeatureScratch, out: &mut [f32]) {
    scratch.scan(column);
    stat_features_from_scan(column, scratch, out);
}

/// Aggregate the 27 statistics from an already-scanned column. The per-cell
/// counters all come from the shared single pass; only the distinct count
/// re-reads cell values (through a sorted index, without copying them) —
/// which is why [`CellSource`] requires random access.
pub(crate) fn stat_features_from_scan<C: CellSource + ?Sized>(
    column: &C,
    scratch: &mut FeatureScratch,
    out: &mut [f32],
) {
    assert_eq!(out.len(), STAT_FEATURE_DIM, "Stat output width mismatch");
    out.fill(0.0);
    let total = scratch.total_cells;
    let n = scratch.n_cells;
    out[0] = total as f32;
    out[1] = n as f32;
    out[2] = if total > 0 {
        1.0 - n as f32 / total as f32
    } else {
        0.0
    }; // fraction missing
    if n == 0 {
        return;
    }

    // Distinctness, via a sort of cell *indices* by value (no `&str` copies).
    scratch
        .sort_idx
        .sort_unstable_by(|&a, &b| column.cell(a as usize).cmp(column.cell(b as usize)));
    let mut distinct = 0usize;
    let mut prev: Option<&str> = None;
    for &i in &scratch.sort_idx {
        let v = column.cell(i as usize);
        if prev != Some(v) {
            distinct += 1;
            prev = Some(v);
        }
    }
    out[3] = distinct as f32;
    out[4] = distinct as f32 / n as f32; // fraction unique

    // Length statistics (in characters).
    let (len_mean, len_std, len_min, len_max) = moments(&scratch.lengths);
    out[5] = len_mean;
    out[6] = len_std;
    out[7] = len_min;
    out[8] = len_max;

    // Token statistics (words per cell).
    let (tok_mean, tok_std, tok_min, tok_max) = moments(&scratch.token_counts);
    out[9] = tok_mean;
    out[10] = tok_std;
    out[11] = tok_min;
    out[12] = tok_max;

    // Character-class fractions (cell level), from the scan's flag bits.
    let frac = |bit: u8| scratch.flags.iter().filter(|&&f| f & bit != 0).count() as f32 / n as f32;
    out[13] = frac(FLAG_ALL_NUMISH);
    out[14] = frac(FLAG_ANY_DIGIT);
    out[15] = frac(FLAG_ALL_ALPHA_WS);
    out[16] = frac(FLAG_ANY_UPPER);
    out[17] = frac(FLAG_HAS_SPACE);
    out[18] = frac(FLAG_ANY_SPECIAL);

    // Numeric value statistics (over parseable cells).
    let numeric = &scratch.numeric;
    out[19] = numeric.len() as f32 / n as f32; // fraction numeric-parseable
    if !numeric.is_empty() {
        let (num_mean, num_std, num_min, num_max) = moments(numeric);
        out[20] = num_mean;
        out[21] = num_std;
        out[22] = num_min;
        out[23] = num_max;
        out[24] = numeric.iter().filter(|&&x| x < 0.0).count() as f32 / numeric.len() as f32;
        out[25] =
            numeric.iter().filter(|&&x| x.fract() != 0.0).count() as f32 / numeric.len() as f32;
    }
    // Mean digit fraction per cell.
    out[26] = scratch.digit_fracs.iter().sum::<f32>() / n as f32;
}

fn moments(values: &[f32]) -> (f32, f32, f32, f32) {
    let n = values.len() as f32;
    let mean = values.iter().sum::<f32>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    (mean, var.sqrt(), min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_27_statistics() {
        let col = Column::new(["a", "b"]);
        assert_eq!(stat_features(&col).len(), 27);
        assert_eq!(STAT_FEATURE_DIM, 27);
    }

    #[test]
    fn empty_column_reports_counts_only() {
        let col = Column::new(["", ""]);
        let f = stat_features(&col);
        assert_eq!(f[0], 2.0);
        assert_eq!(f[1], 0.0);
        assert_eq!(f[2], 1.0);
        assert!(f[3..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn uniqueness_and_lengths() {
        let col = Column::new(["aa", "aa", "bbbb"]);
        let f = stat_features(&col);
        assert_eq!(f[3], 2.0); // distinct
        assert!((f[4] - 2.0 / 3.0).abs() < 1e-6);
        assert!((f[5] - (2.0 + 2.0 + 4.0) / 3.0).abs() < 1e-6);
        assert_eq!(f[7], 2.0);
        assert_eq!(f[8], 4.0);
    }

    #[test]
    fn numeric_statistics_for_number_columns() {
        let col = Column::new(["10", "20", "30"]);
        let f = stat_features(&col);
        assert_eq!(f[19], 1.0); // all numeric
        assert!((f[20] - 20.0).abs() < 1e-4);
        assert_eq!(f[22], 10.0);
        assert_eq!(f[23], 30.0);
        assert_eq!(f[13], 1.0); // all-digit cells
    }

    #[test]
    fn formatted_numbers_are_recognised() {
        let col = Column::new(["1,777,972", "380,948"]);
        let f = stat_features(&col);
        assert_eq!(f[19], 1.0);
        assert!(f[23] > 1_000_000.0);
    }

    #[test]
    fn unit_suffixed_numbers_are_numeric() {
        let col = Column::new(["75 kg", "82 kg"]);
        let f = stat_features(&col);
        assert!(f[19] > 0.9);
    }

    #[test]
    fn text_columns_have_low_numeric_fraction() {
        let col = Column::new(["Warsaw", "London", "Paris"]);
        let f = stat_features(&col);
        assert_eq!(f[19], 0.0);
        assert_eq!(f[15], 1.0); // purely alphabetic
        assert_eq!(f[26], 0.0);
    }

    #[test]
    fn text_and_numbers_produce_different_vectors() {
        let text = stat_features(&Column::new(["alpha", "beta", "gamma"]));
        let nums = stat_features(&Column::new(["1", "2", "3"]));
        assert_ne!(text, nums);
    }

    #[test]
    fn negative_and_fractional_flags() {
        let col = Column::new(["-1.5", "2.25", "3"]);
        let f = stat_features(&col);
        assert!((f[24] - 1.0 / 3.0).abs() < 1e-6);
        assert!((f[25] - 2.0 / 3.0).abs() < 1e-6);
    }
}
