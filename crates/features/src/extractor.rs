//! The column feature extractor `Φ`: assembles the four Sherlock feature
//! groups (**Char**, **Word**, **Para**, **Stat**) into per-column feature
//! vectors for whole tables, in the layout the Sato models consume.

use crate::char_dist::{char_features_from_scan, CHAR_FEATURE_DIM};
use crate::para_embed::para_features_into;
use crate::scratch::FeatureScratch;
use crate::stats::{stat_features_from_scan, STAT_FEATURE_DIM};
use crate::word_embed::word_features_into;
use sato_tabular::table::{CellSource, Column, Table};
use serde::{Deserialize, Serialize};

/// The four Sherlock feature groups (plus, at the model level, the Topic
/// group added by Sato).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureGroup {
    /// Character distribution statistics.
    Char,
    /// Aggregated word embeddings.
    Word,
    /// Paragraph (whole-column) embedding.
    Para,
    /// 27 global column statistics.
    Stat,
}

impl FeatureGroup {
    /// All column-level groups, in the concatenation order used by
    /// [`ColumnFeatures::concatenated`].
    pub const ALL: [FeatureGroup; 4] = [
        FeatureGroup::Char,
        FeatureGroup::Word,
        FeatureGroup::Para,
        FeatureGroup::Stat,
    ];

    /// Lower-case display name (matches the labels in Figure 9).
    pub fn name(self) -> &'static str {
        match self {
            FeatureGroup::Char => "char",
            FeatureGroup::Word => "word",
            FeatureGroup::Para => "par",
            FeatureGroup::Stat => "rest",
        }
    }
}

/// Configuration of the feature extractor (group widths).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Width of the per-token word embedding (the Word group is `2 *
    /// word_dim` wide).
    pub word_dim: usize,
    /// Width of the paragraph embedding.
    pub para_dim: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            word_dim: 50,
            para_dim: 100,
        }
    }
}

impl FeatureConfig {
    /// A smaller configuration for fast unit tests.
    pub fn small() -> Self {
        FeatureConfig {
            word_dim: 16,
            para_dim: 32,
        }
    }
}

/// The extracted features of one column, kept per group so the models can
/// route each group through its own subnetwork and so the permutation
/// importance experiment (Figure 9) can shuffle one group at a time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnFeatures {
    /// Char group.
    pub char: Vec<f32>,
    /// Word group.
    pub word: Vec<f32>,
    /// Para group.
    pub para: Vec<f32>,
    /// Stat group.
    pub stat: Vec<f32>,
}

impl ColumnFeatures {
    /// Borrow a group by tag.
    pub fn group(&self, g: FeatureGroup) -> &[f32] {
        match g {
            FeatureGroup::Char => &self.char,
            FeatureGroup::Word => &self.word,
            FeatureGroup::Para => &self.para,
            FeatureGroup::Stat => &self.stat,
        }
    }

    /// Mutably borrow a group by tag.
    pub fn group_mut(&mut self, g: FeatureGroup) -> &mut Vec<f32> {
        match g {
            FeatureGroup::Char => &mut self.char,
            FeatureGroup::Word => &mut self.word,
            FeatureGroup::Para => &mut self.para,
            FeatureGroup::Stat => &mut self.stat,
        }
    }

    /// Concatenate all groups in [`FeatureGroup::ALL`] order.
    pub fn concatenated(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(
            self.char.len() + self.word.len() + self.para.len() + self.stat.len(),
        );
        out.extend_from_slice(&self.char);
        out.extend_from_slice(&self.word);
        out.extend_from_slice(&self.para);
        out.extend_from_slice(&self.stat);
        out
    }

    /// Total feature dimensionality.
    pub fn total_dim(&self) -> usize {
        self.char.len() + self.word.len() + self.para.len() + self.stat.len()
    }
}

/// The feature extractor `Φ` of the paper's problem formulation.
#[derive(Debug, Clone, Default)]
pub struct FeatureExtractor {
    config: FeatureConfig,
}

impl FeatureExtractor {
    /// Create an extractor with the given widths.
    pub fn new(config: FeatureConfig) -> Self {
        FeatureExtractor { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Width of each group, in [`FeatureGroup::ALL`] order.
    pub fn group_dims(&self) -> Vec<(FeatureGroup, usize)> {
        vec![
            (FeatureGroup::Char, CHAR_FEATURE_DIM),
            (FeatureGroup::Word, 2 * self.config.word_dim),
            (FeatureGroup::Para, self.config.para_dim),
            (FeatureGroup::Stat, STAT_FEATURE_DIM),
        ]
    }

    /// Total per-column feature dimensionality.
    pub fn total_dim(&self) -> usize {
        self.group_dims().iter().map(|(_, d)| d).sum()
    }

    /// Extract the features of one column.
    ///
    /// Allocates a fresh [`FeatureScratch`] per call; loops over many
    /// columns should use [`Self::extract_column_with`] or
    /// [`Self::extract_table_with`] to reuse one.
    pub fn extract_column(&self, column: &Column) -> ColumnFeatures {
        self.extract_column_with(column, &mut FeatureScratch::new())
    }

    /// Extract the features of one column, reusing `scratch` for every
    /// intermediate buffer (single pass over the cells for Char + Stat, no
    /// per-token allocations for Word).
    pub fn extract_column_with<C: CellSource + ?Sized>(
        &self,
        column: &C,
        scratch: &mut FeatureScratch,
    ) -> ColumnFeatures {
        let mut features = ColumnFeatures {
            char: vec![0.0; CHAR_FEATURE_DIM],
            word: vec![0.0; 2 * self.config.word_dim],
            para: vec![0.0; self.config.para_dim],
            stat: vec![0.0; STAT_FEATURE_DIM],
        };
        self.extract_column_into(
            column,
            scratch,
            &mut features.char,
            &mut features.word,
            &mut features.para,
            &mut features.stat,
        );
        features
    }

    /// Extract all four groups of one column directly into caller-provided
    /// slices (e.g. rows of a pre-allocated batch matrix) — the zero-copy
    /// entry point of the batched serving path. Slice lengths must match
    /// [`Self::group_dims`].
    ///
    /// Generic over [`CellSource`]: the batched server feeds it in-memory
    /// [`Column`]s and the colstore path feeds it dictionary-encoded pages,
    /// both through the identical cell-visit order (so the two paths stay
    /// bit-for-bit identical).
    pub fn extract_column_into<C: CellSource + ?Sized>(
        &self,
        column: &C,
        scratch: &mut FeatureScratch,
        char_out: &mut [f32],
        word_out: &mut [f32],
        para_out: &mut [f32],
        stat_out: &mut [f32],
    ) {
        assert_eq!(para_out.len(), self.config.para_dim, "Para width mismatch");
        // One shared pass over the cells feeds both Char and Stat.
        scratch.scan(column);
        char_features_from_scan(scratch, char_out);
        stat_features_from_scan(column, scratch, stat_out);
        word_features_into(column, self.config.word_dim, scratch, word_out);
        para_features_into(column, scratch, para_out);
    }

    /// Extract the features of every column of a table.
    ///
    /// Allocates a fresh [`FeatureScratch`] for the table; corpus loops
    /// should use [`Self::extract_table_with`] to reuse one across tables.
    pub fn extract_table(&self, table: &Table) -> Vec<ColumnFeatures> {
        self.extract_table_with(table, &mut FeatureScratch::new())
    }

    /// Extract the features of every column of a table, reusing `scratch`
    /// across the columns.
    pub fn extract_table_with(
        &self,
        table: &Table,
        scratch: &mut FeatureScratch,
    ) -> Vec<ColumnFeatures> {
        table
            .columns
            .iter()
            .map(|c| self.extract_column_with(c, scratch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sato_tabular::corpus::default_corpus;

    #[test]
    fn group_dims_sum_to_total() {
        let ex = FeatureExtractor::new(FeatureConfig::default());
        let dims = ex.group_dims();
        assert_eq!(dims.len(), 4);
        assert_eq!(ex.total_dim(), dims.iter().map(|(_, d)| d).sum::<usize>());
    }

    #[test]
    fn extracted_features_match_declared_dims() {
        let ex = FeatureExtractor::new(FeatureConfig::small());
        let col = Column::new(["Warsaw", "London", "Paris"]);
        let f = ex.extract_column(&col);
        let dims = ex.group_dims();
        assert_eq!(f.char.len(), dims[0].1);
        assert_eq!(f.word.len(), dims[1].1);
        assert_eq!(f.para.len(), dims[2].1);
        assert_eq!(f.stat.len(), dims[3].1);
        assert_eq!(f.total_dim(), ex.total_dim());
        assert_eq!(f.concatenated().len(), ex.total_dim());
    }

    #[test]
    fn extraction_is_deterministic() {
        let ex = FeatureExtractor::new(FeatureConfig::small());
        let col = Column::new(["3.5 MB", "4.0 MB"]);
        assert_eq!(ex.extract_column(&col), ex.extract_column(&col));
    }

    #[test]
    fn group_accessors_round_trip() {
        let ex = FeatureExtractor::new(FeatureConfig::small());
        let mut f = ex.extract_column(&Column::new(["42", "43"]));
        for g in FeatureGroup::ALL {
            assert_eq!(f.group(g).len(), f.group_mut(g).len());
        }
        f.group_mut(FeatureGroup::Stat)[0] = 99.0;
        assert_eq!(f.stat[0], 99.0);
    }

    #[test]
    fn table_extraction_yields_one_vector_per_column() {
        let ex = FeatureExtractor::new(FeatureConfig::small());
        let corpus = default_corpus(5, 1);
        for table in corpus.iter() {
            let feats = ex.extract_table(table);
            assert_eq!(feats.len(), table.num_columns());
        }
    }

    #[test]
    fn all_features_are_finite() {
        let ex = FeatureExtractor::new(FeatureConfig::default());
        let corpus = default_corpus(20, 2);
        for table in corpus.iter() {
            for f in ex.extract_table(table) {
                assert!(f.concatenated().iter().all(|x| x.is_finite()));
            }
        }
    }

    #[test]
    fn group_names_match_figure9_labels() {
        assert_eq!(FeatureGroup::Char.name(), "char");
        assert_eq!(FeatureGroup::Word.name(), "word");
        assert_eq!(FeatureGroup::Para.name(), "par");
        assert_eq!(FeatureGroup::Stat.name(), "rest");
    }
}
