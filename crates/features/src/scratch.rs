//! Reusable extraction workspace: one pass over a column's cells fills
//! everything the Char and Stat feature groups need (per-cell character
//! histograms, length/token/numeric statistics, character-class flags), so
//! the extractor never re-reads a cell once per alphabet character and never
//! allocates per-cell intermediates.
//!
//! A [`FeatureScratch`] owns every buffer the single-pass extractors touch.
//! Thread one through [`FeatureExtractor::extract_table_with`]
//! (or the column-level `*_into` functions) and, after the first column has
//! warmed the buffers up, feature extraction performs no heap allocation
//! beyond the output vectors themselves.
//!
//! [`FeatureExtractor::extract_table_with`]: crate::extractor::FeatureExtractor::extract_table_with

use crate::char_dist::CHARSET;
use sato_tabular::table::CellSource;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Number of characters in the Char-group alphabet.
pub(crate) const CHARSET_LEN: usize = CHARSET.len();

/// ASCII code point → index into [`CHARSET`], 255 when absent.
const CHAR_LUT: [u8; 128] = build_char_lut();

const fn build_char_lut() -> [u8; 128] {
    let mut lut = [255u8; 128];
    let mut i = 0;
    while i < CHARSET.len() {
        lut[CHARSET[i] as usize] = i as u8;
        i += 1;
    }
    lut
}

/// Byte → [`CHARSET`] index after ASCII lower-casing, [`HIST_SKIP`] when the
/// (folded) byte is outside the alphabet. Drives the
/// [`sato_kernels::lut_histogram`] pass for all-ASCII cells; `CHAR_LUT`'s
/// absent marker (255) is the same value as the kernel's skip sentinel.
const ASCII_HIST_LUT: [u8; 256] = build_ascii_hist_lut();

use sato_kernels::HIST_SKIP;

const fn build_ascii_hist_lut() -> [u8; 256] {
    let mut lut = [HIST_SKIP; 256];
    let mut b = 0usize;
    while b < 128 {
        let folded = if b >= b'A' as usize && b <= b'Z' as usize {
            b + 32
        } else {
            b
        };
        lut[b] = CHAR_LUT[folded];
        b += 1;
    }
    lut
}

/// Index of `c` in the Char alphabet (`c` must already be lower-cased).
#[inline]
pub(crate) fn charset_index(c: char) -> Option<usize> {
    let code = c as usize;
    if code < 128 {
        let idx = CHAR_LUT[code];
        (idx != 255).then_some(idx as usize)
    } else {
        None
    }
}

// Per-cell character-class flags gathered during the scan.
pub(crate) const FLAG_ALL_NUMISH: u8 = 1 << 0; // digits and . , - only
pub(crate) const FLAG_ANY_DIGIT: u8 = 1 << 1;
pub(crate) const FLAG_ALL_ALPHA_WS: u8 = 1 << 2; // alphabetic / whitespace only
pub(crate) const FLAG_ANY_UPPER: u8 = 1 << 3;
pub(crate) const FLAG_HAS_SPACE: u8 = 1 << 4; // literal ' '
pub(crate) const FLAG_ANY_SPECIAL: u8 = 1 << 5; // non-alphanumeric, non-whitespace

/// Reusable workspace for single-pass column feature extraction.
///
/// All buffers keep their capacity between columns; `Default::default()`
/// starts empty and grows on first use.
#[derive(Debug, Clone, Default)]
pub struct FeatureScratch {
    /// Total cell count of the scanned column (including blank cells).
    pub(crate) total_cells: usize,
    /// Number of non-blank cells (the cells the statistics run over).
    pub(crate) n_cells: usize,
    /// `n_cells * CHARSET_LEN` per-cell character counts, cell-major.
    pub(crate) char_counts: Vec<u32>,
    /// Per non-blank cell: length in characters.
    pub(crate) lengths: Vec<f32>,
    /// Per non-blank cell: whitespace-separated token count.
    pub(crate) token_counts: Vec<f32>,
    /// Per non-blank cell: character-class flag bits.
    pub(crate) flags: Vec<u8>,
    /// Per non-blank cell: digit fraction (digits / chars).
    pub(crate) digit_fracs: Vec<f32>,
    /// Numeric values of the parseable cells, in cell order.
    pub(crate) numeric: Vec<f32>,
    /// Indices (into `column.values`) of the non-blank cells, for the
    /// sort-based distinct count.
    pub(crate) sort_idx: Vec<u32>,
    /// Reusable buffer for the cleaned numeric form of one cell.
    pub(crate) parse_buf: String,
    /// Reusable `<token>` character window for the n-gram hasher.
    pub(crate) token_chars: Vec<char>,
    /// Reusable per-token embedding accumulator.
    pub(crate) token_vec: Vec<f32>,
    /// Para group: map key (FNV token hash, open-addressed on collision) →
    /// index into [`Self::para_entries`]. The keys are already well-mixed
    /// 64-bit hashes, so the map uses a passthrough hasher instead of
    /// re-hashing every key through SipHash.
    pub(crate) para_map: HashMap<u64, u32, BuildHasherDefault<PassthroughHasher>>,
    /// Para group: one term-frequency entry per distinct token.
    pub(crate) para_entries: Vec<ParaEntry>,
    /// Para group: lower-cased token bytes of all distinct tokens, back to
    /// back (the arena [`ParaEntry`] ranges index into).
    pub(crate) para_arena: Vec<u8>,
    /// Para group: entry indices sorted by token bytes for the deterministic
    /// drain.
    pub(crate) para_order: Vec<u32>,
    /// Para group: reusable lower-cased token buffer.
    pub(crate) para_token: String,
}

/// Term-frequency entry of one distinct Para token: its lower-cased bytes
/// live in the shared arena (`start..end`), `hash` is its seeded FNV-1a hash
/// (which also determines the embedding bucket and sign), `tf` the count.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ParaEntry {
    pub(crate) start: u32,
    pub(crate) end: u32,
    pub(crate) hash: u64,
    pub(crate) tf: u32,
}

/// Identity hasher for map keys that are already uniform 64-bit hashes
/// (the Para term-frequency map): `write_u64` passes the key straight
/// through, avoiding a per-token SipHash round.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PassthroughHasher(u64);

impl Hasher for PassthroughHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are expected, but stay total for any input.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

impl FeatureScratch {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scan every cell of `column` once, filling the per-cell histograms and
    /// statistics the Char and Stat groups aggregate.
    ///
    /// Blank cells (empty or whitespace-only) are recorded in `total_cells`
    /// but excluded from every per-cell buffer, mirroring how the feature
    /// definitions treat missing data. Generic over [`CellSource`], so the
    /// same pass runs over in-memory columns and decoded colstore pages.
    pub(crate) fn scan<C: CellSource + ?Sized>(&mut self, column: &C) {
        self.total_cells = column.num_cells();
        self.n_cells = 0;
        self.char_counts.clear();
        self.lengths.clear();
        self.token_counts.clear();
        self.flags.clear();
        self.digit_fracs.clear();
        self.numeric.clear();
        self.sort_idx.clear();

        for cell_idx in 0..self.total_cells {
            let cell = column.cell(cell_idx);
            if cell.trim().is_empty() {
                continue;
            }
            self.sort_idx.push(cell_idx as u32);
            let base = self.n_cells * CHARSET_LEN;
            self.n_cells += 1;
            self.char_counts.resize(base + CHARSET_LEN, 0);
            let counts = &mut self.char_counts[base..base + CHARSET_LEN];

            self.parse_buf.clear();
            let scan = if cell.is_ascii() {
                scan_cell_ascii(cell.as_bytes(), counts, &mut self.parse_buf)
            } else {
                scan_cell_unicode(cell, counts, &mut self.parse_buf)
            };
            self.lengths.push(scan.chars as f32);
            self.token_counts.push(scan.tokens as f32);
            self.flags.push(scan.flags);
            self.digit_fracs
                .push(scan.digits as f32 / scan.chars.max(1) as f32);

            // Numeric parse, tolerating separators and unit suffixes: the
            // cell counts as numeric when it has digits, they make up a
            // substantial part of it, and the cleaned form parses.
            if !self.parse_buf.is_empty()
                && scan.digits > 0
                && scan.digits as f32 >= 0.4 * scan.non_ws as f32
            {
                if let Ok(v) = self.parse_buf.parse::<f32>() {
                    self.numeric.push(v);
                }
            }
        }
    }

    /// Per-cell character counts of the `ci`-th alphabet character, in cell
    /// order (`n_cells` entries, stride [`CHARSET_LEN`]).
    #[inline]
    pub(crate) fn char_count(&self, cell: usize, ci: usize) -> u32 {
        self.char_counts[cell * CHARSET_LEN + ci]
    }
}

/// Counters gathered from one cell scan.
struct CellScan {
    chars: usize,
    digits: usize,
    non_ws: usize,
    tokens: usize,
    flags: u8,
}

/// Byte-level scan of an all-ASCII cell: a [`sato_kernels::lut_histogram`]
/// pass over the fold-to-charset LUT, then one branch-light byte pass for
/// the Stat counters.
///
/// The whitespace predicate must match `char::is_whitespace`, which for
/// ASCII covers `' '` and `0x09..=0x0D` — one character more (`\x0B`,
/// vertical tab) than `u8::is_ascii_whitespace`.
fn scan_cell_ascii(bytes: &[u8], counts: &mut [u32], parse_buf: &mut String) -> CellScan {
    sato_kernels::lut_histogram(bytes, &ASCII_HIST_LUT, counts);

    let mut digits = 0usize;
    let mut non_ws = 0usize;
    let mut tokens = 0usize;
    let mut prev_ws = true;
    let mut flags = FLAG_ALL_NUMISH | FLAG_ALL_ALPHA_WS;
    for &b in bytes {
        let ws = matches!(b, b' ' | 0x09..=0x0D);
        if !ws {
            non_ws += 1;
            if prev_ws {
                tokens += 1;
            }
        }
        prev_ws = ws;
        if b.is_ascii_digit() {
            digits += 1;
            flags |= FLAG_ANY_DIGIT;
        }
        if !(b.is_ascii_digit() || b == b'.' || b == b',' || b == b'-') {
            flags &= !FLAG_ALL_NUMISH;
        }
        if !(b.is_ascii_alphabetic() || ws) {
            flags &= !FLAG_ALL_ALPHA_WS;
        }
        if b.is_ascii_uppercase() {
            flags |= FLAG_ANY_UPPER;
        }
        if b == b' ' {
            flags |= FLAG_HAS_SPACE;
        }
        if !b.is_ascii_alphanumeric() && !ws {
            flags |= FLAG_ANY_SPECIAL;
        }
        if b.is_ascii_digit() || b == b'.' || b == b'-' {
            parse_buf.push(b as char);
        }
    }
    CellScan {
        chars: bytes.len(),
        digits,
        non_ws,
        tokens,
        flags,
    }
}

/// The general char-level scan (the historical loop), used for cells with
/// any non-ASCII character.
fn scan_cell_unicode(cell: &str, counts: &mut [u32], parse_buf: &mut String) -> CellScan {
    let mut chars = 0usize;
    let mut digits = 0usize;
    let mut non_ws = 0usize;
    let mut tokens = 0usize;
    let mut prev_ws = true;
    let mut flags = FLAG_ALL_NUMISH | FLAG_ALL_ALPHA_WS;
    for c in cell.chars() {
        chars += 1;
        // Char histogram over the lower-cased cell. Non-ASCII characters may
        // lower-case into the ASCII alphabet (e.g. the Kelvin sign), so
        // expand the full case mapping for them.
        if c.is_ascii() {
            if let Some(idx) = charset_index(c.to_ascii_lowercase()) {
                counts[idx] += 1;
            }
        } else {
            for lc in c.to_lowercase() {
                if let Some(idx) = charset_index(lc) {
                    counts[idx] += 1;
                }
            }
        }
        // Stat flags and counters, same predicates as the Stat group used to
        // apply in separate passes.
        let ws = c.is_whitespace();
        if !ws {
            non_ws += 1;
            if prev_ws {
                tokens += 1;
            }
        }
        prev_ws = ws;
        if c.is_ascii_digit() {
            digits += 1;
            flags |= FLAG_ANY_DIGIT;
        }
        if !(c.is_ascii_digit() || c == '.' || c == ',' || c == '-') {
            flags &= !FLAG_ALL_NUMISH;
        }
        if !(c.is_alphabetic() || ws) {
            flags &= !FLAG_ALL_ALPHA_WS;
        }
        if c.is_uppercase() {
            flags |= FLAG_ANY_UPPER;
        }
        if c == ' ' {
            flags |= FLAG_HAS_SPACE;
        }
        if !c.is_alphanumeric() && !ws {
            flags |= FLAG_ANY_SPECIAL;
        }
        if c.is_ascii_digit() || c == '.' || c == '-' {
            parse_buf.push(c);
        }
    }
    CellScan {
        chars,
        digits,
        non_ws,
        tokens,
        flags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sato_tabular::table::Column;

    #[test]
    fn scan_skips_blank_cells_but_counts_them() {
        let mut s = FeatureScratch::new();
        s.scan(&Column::new(["ab", "  ", "", "c d"]));
        assert_eq!(s.total_cells, 4);
        assert_eq!(s.n_cells, 2);
        assert_eq!(s.lengths, vec![2.0, 3.0]);
        assert_eq!(s.token_counts, vec![1.0, 2.0]);
        assert_eq!(s.sort_idx, vec![0, 3]);
    }

    #[test]
    fn char_counts_are_case_folded() {
        let mut s = FeatureScratch::new();
        s.scan(&Column::new(["AbA"]));
        let a = CHARSET.iter().position(|&c| c == 'a').unwrap();
        let b = CHARSET.iter().position(|&c| c == 'b').unwrap();
        assert_eq!(s.char_count(0, a), 2);
        assert_eq!(s.char_count(0, b), 1);
    }

    #[test]
    fn kelvin_sign_folds_into_ascii_k() {
        // U+212A KELVIN SIGN lower-cases to 'k'; the single-pass scan must
        // agree with `str::to_lowercase` here.
        let mut s = FeatureScratch::new();
        s.scan(&Column::new(["\u{212A}"]));
        let k = CHARSET.iter().position(|&c| c == 'k').unwrap();
        assert_eq!(s.char_count(0, k), 1);
    }

    #[test]
    fn numeric_parse_matches_cleaned_form() {
        let mut s = FeatureScratch::new();
        s.scan(&Column::new(["1,777,972", "75 kg", "Warsaw", "-1.5"]));
        assert_eq!(s.numeric, vec![1_777_972.0, 75.0, -1.5]);
    }

    /// The byte-level ASCII fast path must agree with the char-level scan on
    /// every ASCII cell — including `\x0B` (vertical tab), which
    /// `char::is_whitespace` treats as whitespace but
    /// `u8::is_ascii_whitespace` does not.
    #[test]
    fn ascii_fast_path_matches_unicode_scan() {
        let cells = [
            "ab cd",
            "1,777.5 kg",
            "UPPER lower",
            "a\x0Bb",
            "\ttab\tsep\t",
            "x\x0C\x0Dy",
            "-1.5e3",
            "!@# $%^",
            "",
            "solo",
        ];
        for cell in cells {
            assert!(cell.is_ascii());
            let mut counts_a = vec![0u32; CHARSET_LEN];
            let mut counts_b = vec![0u32; CHARSET_LEN];
            let mut parse_a = String::new();
            let mut parse_b = String::new();
            let a = scan_cell_ascii(cell.as_bytes(), &mut counts_a, &mut parse_a);
            let b = scan_cell_unicode(cell, &mut counts_b, &mut parse_b);
            assert_eq!(counts_a, counts_b, "histogram diverged on {cell:?}");
            assert_eq!(parse_a, parse_b, "parse buffer diverged on {cell:?}");
            assert_eq!(a.chars, b.chars, "chars diverged on {cell:?}");
            assert_eq!(a.digits, b.digits, "digits diverged on {cell:?}");
            assert_eq!(a.non_ws, b.non_ws, "non_ws diverged on {cell:?}");
            assert_eq!(a.tokens, b.tokens, "tokens diverged on {cell:?}");
            assert_eq!(a.flags, b.flags, "flags diverged on {cell:?}");
        }
    }

    #[test]
    fn scratch_is_reusable_across_columns() {
        let mut s = FeatureScratch::new();
        s.scan(&Column::new(["abcdef", "ghij"]));
        s.scan(&Column::new(["x"]));
        assert_eq!(s.n_cells, 1);
        assert_eq!(s.lengths, vec![1.0]);
        assert_eq!(s.char_counts.len(), CHARSET_LEN);
    }
}
