//! Word-embedding features (the paper's **Word** feature group).
//!
//! Sherlock averages pre-trained GloVe vectors over the tokens of a column;
//! this reproduction uses the hashed character n-gram embedding from
//! [`crate::hashing`] instead (see the module docs there for why this is a
//! faithful substitution). The column feature is the concatenation of the
//! element-wise mean and standard deviation of the token vectors, matching
//! Sherlock's mean/std aggregation.

use crate::hashing::{for_each_token, hash_token_into};
use crate::scratch::FeatureScratch;
use sato_tabular::table::{CellSource, Column};

/// Hash seed that defines the word-embedding space.
pub const WORD_EMBED_SEED: u64 = 0x5a70_0001;

/// Default per-token embedding width.
pub const DEFAULT_WORD_DIM: usize = 50;

/// Compute the Word feature group for a column: `[mean || std]` of the
/// hashed token embeddings, `2 * dim` values in total.
///
/// Convenience wrapper around [`word_features_into`] that allocates its own
/// workspace; batch callers should reuse a [`FeatureScratch`] instead.
pub fn word_features(column: &Column, dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; 2 * dim];
    let mut scratch = FeatureScratch::new();
    word_features_into(column, dim, &mut scratch, &mut out);
    out
}

/// Compute the Word features into `out` (length `2 * dim`), reusing
/// `scratch` for the per-token embedding buffers.
///
/// The output slice doubles as the accumulator — `out[..dim]` holds the
/// running sum and `out[dim..]` the running sum of squares until the final
/// mean/std fix-up — so the only working storage is the per-token embedding
/// in the scratch.
pub fn word_features_into<C: CellSource + ?Sized>(
    column: &C,
    dim: usize,
    scratch: &mut FeatureScratch,
    out: &mut [f32],
) {
    assert_eq!(out.len(), 2 * dim, "Word output width mismatch");
    out.fill(0.0);
    scratch.token_vec.resize(dim, 0.0);
    let mut count = 0usize;
    for i in 0..column.num_cells() {
        for_each_token(column.cell(i), |token| {
            hash_token_into(
                token,
                (3, 5),
                WORD_EMBED_SEED,
                &mut scratch.token_chars,
                &mut scratch.token_vec,
            );
            let (sum, sum_sq) = out.split_at_mut(dim);
            for (i, &v) in scratch.token_vec.iter().enumerate() {
                sum[i] += v;
                sum_sq[i] += v * v;
            }
            count += 1;
        });
    }
    if count == 0 {
        return;
    }
    let n = count as f32;
    for i in 0..dim {
        let mean = out[i] / n;
        let var = (out[dim + i] / n - mean * mean).max(0.0);
        out[i] = mean;
        out[dim + i] = var.sqrt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::cosine;

    #[test]
    fn dimension_is_twice_embedding_width() {
        let col = Column::new(["Warsaw", "London"]);
        assert_eq!(word_features(&col, 32).len(), 64);
    }

    #[test]
    fn empty_column_is_zero() {
        let col = Column::new(["", "  ", "---"]);
        assert!(word_features(&col, 16).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identical_columns_have_identical_features() {
        let a = Column::new(["Florence", "Warsaw", "London"]);
        let b = Column::new(["Florence", "Warsaw", "London"]);
        assert_eq!(word_features(&a, 50), word_features(&b, 50));
    }

    #[test]
    fn city_columns_are_more_similar_to_each_other_than_to_numbers() {
        let cities_a = Column::new(["Florence", "Warsaw", "London", "Braunschweig"]);
        let cities_b = Column::new(["Warsaw", "London", "Paris", "Rome"]);
        let numbers = Column::new(["12345", "67890", "24680", "13579"]);
        let fa = word_features(&cities_a, 64);
        let fb = word_features(&cities_b, 64);
        let fn_ = word_features(&numbers, 64);
        assert!(cosine(&fa, &fb) > cosine(&fa, &fn_));
    }

    #[test]
    fn single_token_column_has_zero_std_part() {
        let col = Column::new(["warsaw"]);
        let f = word_features(&col, 20);
        assert!(f[20..].iter().all(|&x| x.abs() < 1e-6));
        assert!(f[..20].iter().any(|&x| x != 0.0));
    }

    #[test]
    fn order_of_cells_does_not_matter() {
        let a = Column::new(["alpha beta", "gamma"]);
        let b = Column::new(["gamma", "alpha beta"]);
        let fa = word_features(&a, 32);
        let fb = word_features(&b, 32);
        for (x, y) in fa.iter().zip(&fb) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
