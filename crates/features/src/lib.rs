//! # sato-features
//!
//! Sherlock-style column feature extraction for the Sato reproduction: the
//! four per-column feature groups the paper's single-column model consumes —
//! character distributions (**Char**), aggregated word embeddings (**Word**),
//! paragraph embeddings (**Para**) and 27 global statistics (**Stat**).
//!
//! The pre-trained GloVe/doc2vec artefacts used by the original Sherlock are
//! replaced with deterministic hashed character-n-gram embeddings (see the
//! module docs of [`hashing`] and DESIGN.md §2 for the substitution
//! rationale).
//!
//! ```
//! use sato_features::{FeatureConfig, FeatureExtractor};
//! use sato_tabular::table::Column;
//!
//! let extractor = FeatureExtractor::new(FeatureConfig::default());
//! let column = Column::new(["Florence", "Warsaw", "London"]);
//! let features = extractor.extract_column(&column);
//! assert_eq!(features.total_dim(), extractor.total_dim());
//! ```

#![warn(missing_docs)]

pub mod char_dist;
pub mod extractor;
pub mod hashing;
pub mod para_embed;
pub mod reference;
pub mod scratch;
pub mod stats;
pub mod word_embed;

pub use extractor::{ColumnFeatures, FeatureConfig, FeatureExtractor, FeatureGroup};
pub use scratch::FeatureScratch;
