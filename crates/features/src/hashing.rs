//! Deterministic feature hashing used by the word and paragraph embeddings.
//!
//! The real Sherlock features use pre-trained GloVe word vectors and doc2vec
//! paragraph vectors. Those checkpoints are external binary artefacts, so
//! this reproduction substitutes a fastText-style *hashing embedding*:
//! character n-grams of a token are hashed into a fixed number of buckets
//! with pseudo-random signs, summed and normalised. Similar strings share
//! n-grams and therefore land near each other — the distributional property
//! the downstream classifier actually exploits.

/// Streaming FNV-1a state, so n-gram windows can be hashed char by char
/// without materialising the gram as a `String` first. Thin wrapper over
/// [`sato_kernels::Fnv1a`] keeping this crate's historical seeded
/// constructor name.
#[derive(Clone, Copy)]
pub struct Fnv1a(sato_kernels::Fnv1a);

impl Fnv1a {
    /// Start a seeded hash stream.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Fnv1a(sato_kernels::Fnv1a::with_seed(seed))
    }

    /// Absorb raw bytes.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        self.0.write(bytes);
    }

    /// Absorb a character's UTF-8 encoding (identical to hashing the bytes
    /// of a string containing it).
    #[inline]
    pub fn write_char(&mut self, c: char) {
        self.0.write_char(c);
    }

    /// The accumulated hash value.
    #[inline]
    pub fn finish(self) -> u64 {
        self.0.finish()
    }
}

/// A simple, stable 64-bit FNV-1a hash (so features do not depend on the
/// platform's `DefaultHasher` seed and stay identical across runs).
pub fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    sato_kernels::fnv1a64_seeded(bytes, seed)
}

/// Hash a token's character n-grams into a `dim`-bucket signed vector.
///
/// * `ngram_range` controls which n-gram lengths are used (inclusive).
/// * `seed` decorrelates different embedding spaces (the word and paragraph
///   groups use different seeds so they are not identical features).
///
/// Convenience wrapper around [`hash_token_into`] that allocates the output
/// and its window buffer; hot paths should reuse both.
pub fn hash_token(token: &str, dim: usize, ngram_range: (usize, usize), seed: u64) -> Vec<f32> {
    let mut v = vec![0.0f32; dim];
    let mut chars = Vec::new();
    hash_token_into(token, ngram_range, seed, &mut chars, &mut v);
    v
}

/// Hash a token's character n-grams into `out` (one bucket per element),
/// reusing `chars_buf` for the `<token>` character window.
///
/// Case is folded per character (no lower-cased `String` copy of the token,
/// no `format!` for the boundary marks). Per-character folding matches
/// `str::to_lowercase` except for context-sensitive mappings (the Greek
/// final sigma is the only one), so tokens containing a non-ASCII uppercase
/// character take a rare exact-fold fallback — keeping the output
/// bit-identical to the reference implementation for every input.
pub fn hash_token_into(
    token: &str,
    ngram_range: (usize, usize),
    seed: u64,
    chars_buf: &mut Vec<char>,
    out: &mut [f32],
) {
    let dim = out.len();
    assert!(dim > 0, "embedding width must be positive");
    out.fill(0.0);
    chars_buf.clear();
    chars_buf.push('<');
    if token.chars().any(|c| !c.is_ascii() && c.is_uppercase()) {
        // Context-sensitive case mapping possible: defer to the exact
        // whole-string fold.
        chars_buf.extend(token.to_lowercase().chars());
    } else {
        for c in token.chars() {
            if c.is_ascii() {
                chars_buf.push(c.to_ascii_lowercase());
            } else {
                chars_buf.extend(c.to_lowercase());
            }
        }
    }
    chars_buf.push('>');
    accumulate_ngrams(chars_buf, ngram_range, seed, out);
    l2_normalize(out);
}

/// Hash every n-gram of `chars` into signed `out` buckets, extending each
/// start position through the lengths `lo..=hi` so every character is
/// absorbed once per start instead of once per (start, length) pair.
///
/// The bucket accumulations are `±1.0` added to `f32` — integer-valued sums
/// far below 2^24 — so visiting the grams start-major instead of
/// length-major produces bit-identical buckets to the historical
/// [`accumulate_ngrams_scalar`] loop while doing a fraction of the hash
/// work (for the standard `(3, 5)` range, each char is hashed once per
/// start instead of up to three times).
#[inline]
fn accumulate_ngrams(chars: &[char], ngram_range: (usize, usize), seed: u64, out: &mut [f32]) {
    let dim = out.len() as u64;
    let (lo, hi) = ngram_range;
    if lo == 0 {
        // Degenerate range: defer to the reference loop's semantics
        // (`windows(0)` panics there too, so normal configs never hit this).
        return accumulate_ngrams_scalar(chars, ngram_range, seed, out);
    }
    for start in 0..chars.len().saturating_sub(lo - 1) {
        let mut hasher = sato_kernels::Fnv1a::with_seed(seed);
        let longest = hi.min(chars.len() - start);
        for (off, &c) in chars[start..start + longest].iter().enumerate() {
            hasher.write_char(c);
            if off + 1 >= lo {
                let h = hasher.finish();
                let sign = if (h >> 63) & 1 == 0 { 1.0 } else { -1.0 };
                out[(h % dim) as usize] += sign;
            }
        }
    }
}

/// The historical length-major n-gram loop: for each `n`, hash every
/// `n`-char window from scratch. Kept as the parity oracle and the
/// `table2_efficiency` hashing baseline.
pub fn accumulate_ngrams_scalar(
    chars: &[char],
    ngram_range: (usize, usize),
    seed: u64,
    out: &mut [f32],
) {
    let dim = out.len();
    let (lo, hi) = ngram_range;
    for n in lo..=hi {
        if chars.len() < n {
            continue;
        }
        for window in chars.windows(n) {
            let mut hasher = Fnv1a::new(seed);
            for &c in window {
                hasher.write_char(c);
            }
            let h = hasher.finish();
            let bucket = (h % dim as u64) as usize;
            let sign = if (h >> 63) & 1 == 0 { 1.0 } else { -1.0 };
            out[bucket] += sign;
        }
    }
}

/// Reference form of [`hash_token_into`] built on the length-major scalar
/// loop — used by the parity tests and the benchmark baseline.
pub fn hash_token_into_scalar(
    token: &str,
    ngram_range: (usize, usize),
    seed: u64,
    chars_buf: &mut Vec<char>,
    out: &mut [f32],
) {
    assert!(!out.is_empty(), "embedding width must be positive");
    out.fill(0.0);
    chars_buf.clear();
    chars_buf.push('<');
    if token.chars().any(|c| !c.is_ascii() && c.is_uppercase()) {
        chars_buf.extend(token.to_lowercase().chars());
    } else {
        for c in token.chars() {
            if c.is_ascii() {
                chars_buf.push(c.to_ascii_lowercase());
            } else {
                chars_buf.extend(c.to_lowercase());
            }
        }
    }
    chars_buf.push('>');
    accumulate_ngrams_scalar(chars_buf, ngram_range, seed, out);
    l2_normalize(out);
}

/// Visit every word token of a cell (maximal alphanumeric runs) without
/// allocating per-token `String`s. Tokens are passed through in their
/// original case; the n-gram hasher folds case per character.
#[inline]
pub fn for_each_token(cell: &str, mut f: impl FnMut(&str)) {
    for token in cell.split(|c: char| !c.is_alphanumeric()) {
        if !token.is_empty() {
            f(token);
        }
    }
}

/// Visit every **lower-cased** word token of a cell, folding each token into
/// the reusable `buf` instead of allocating a `String` per token.
///
/// The tokens handed to `f` are bit-identical to [`tokenize`]'s output:
/// case is folded per character (which matches `str::to_lowercase` except
/// for context-sensitive mappings), and tokens containing a non-ASCII
/// uppercase character take the rare exact whole-string fold, exactly as in
/// [`hash_token_into`]. `sato_topic::vocab::for_each_token_lower` carries
/// the same fold logic (that crate cannot depend on this one); a Unicode
/// fix here must be mirrored there.
#[inline]
pub fn for_each_token_lower(cell: &str, buf: &mut String, mut f: impl FnMut(&str)) {
    for token in cell.split(|c: char| !c.is_alphanumeric()) {
        if token.is_empty() {
            continue;
        }
        buf.clear();
        if token.chars().any(|c| !c.is_ascii() && c.is_uppercase()) {
            buf.push_str(&token.to_lowercase());
        } else {
            for c in token.chars() {
                if c.is_ascii() {
                    buf.push(c.to_ascii_lowercase());
                } else {
                    buf.extend(c.to_lowercase());
                }
            }
        }
        f(buf.as_str());
    }
}

/// Normalise a vector to unit L2 norm in place (no-op for the zero vector).
pub fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Split a cell into word tokens (alphanumeric runs).
pub fn tokenize(cell: &str) -> Vec<String> {
    cell.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Cosine similarity between two equal-length vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic() {
        let a = hash_token("Warsaw", 64, (3, 5), 1);
        let b = hash_token("Warsaw", 64, (3, 5), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = hash_token("Warsaw", 64, (3, 5), 1);
        let b = hash_token("Warsaw", 64, (3, 5), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn vectors_are_unit_norm() {
        let v = hash_token("Florence", 64, (3, 5), 0);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn similar_strings_are_closer_than_dissimilar_ones() {
        let dim = 128;
        let warsaw = hash_token("Warsaw", dim, (3, 5), 0);
        let warsawa = hash_token("Warsawa", dim, (3, 5), 0);
        let number = hash_token("1234567", dim, (3, 5), 0);
        assert!(cosine(&warsaw, &warsawa) > cosine(&warsaw, &number));
        assert!(cosine(&warsaw, &warsawa) > 0.4);
    }

    #[test]
    fn short_tokens_still_produce_vectors() {
        let v = hash_token("a", 32, (3, 5), 0);
        // "<a>" has exactly one 3-gram, so the vector is non-zero.
        assert!(v.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn tokenize_splits_on_non_alphanumerics() {
        assert_eq!(tokenize("Warsaw, Poland"), vec!["warsaw", "poland"]);
        assert_eq!(tokenize("3.5 MB"), vec!["3", "5", "mb"]);
        assert!(tokenize("--- ").is_empty());
    }

    #[test]
    fn streaming_lowercase_tokens_match_tokenize_bit_for_bit() {
        let cases = [
            "Warsaw, Poland",
            "3.5 MB",
            "--- ",
            "",
            "MiXeD CaSe ALLCAPS 123-456",
            "Kelvin \u{212A} \u{00C9}clair na\u{00EF}ve",
            // Word-final Greek capital sigma: the one context-sensitive
            // lower-case mapping (Σ → ς at word end).
            "ΟΔΟΣ Οδός ΣΟΦΙΑ",
        ];
        let mut buf = String::new();
        for cell in cases {
            let mut streamed = Vec::new();
            for_each_token_lower(cell, &mut buf, |t| streamed.push(t.to_string()));
            assert_eq!(streamed, tokenize(cell), "tokens diverged on {cell:?}");
        }
    }

    #[test]
    fn cosine_bounds() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
        assert!(cosine(&a, &b).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &a), 0.0);
    }

    #[test]
    fn fnv_differs_across_seeds_and_inputs() {
        assert_ne!(fnv1a(b"abc", 0), fnv1a(b"abd", 0));
        assert_ne!(fnv1a(b"abc", 0), fnv1a(b"abc", 1));
    }

    /// The start-major prefix-extension loop must reproduce the historical
    /// length-major windows bit for bit (±1 integer sums in f32 are exact
    /// under reordering), across token lengths, ranges and scripts.
    #[test]
    fn prefix_extension_matches_scalar_windows_bit_for_bit() {
        let tokens = [
            "",
            "a",
            "ab",
            "Warsaw",
            "Warszawa",
            "1234567",
            "ΟΔΟΣ",
            "naïve",
            "ßΣς",
            "a-very-long-token-with-many-grams",
        ];
        let ranges = [(1, 1), (1, 3), (3, 5), (2, 7), (5, 3)];
        let mut chars_a = Vec::new();
        let mut chars_b = Vec::new();
        for token in tokens {
            for range in ranges {
                for seed in [0u64, 1, 0xdead_beef] {
                    let mut fast = vec![0.0f32; 64];
                    let mut slow = vec![0.0f32; 64];
                    hash_token_into(token, range, seed, &mut chars_a, &mut fast);
                    hash_token_into_scalar(token, range, seed, &mut chars_b, &mut slow);
                    let fast_bits: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
                    let slow_bits: Vec<u32> = slow.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(
                        fast_bits, slow_bits,
                        "diverged on {token:?} {range:?} {seed}"
                    );
                }
            }
        }
    }
}
