//! Deterministic feature hashing used by the word and paragraph embeddings.
//!
//! The real Sherlock features use pre-trained GloVe word vectors and doc2vec
//! paragraph vectors. Those checkpoints are external binary artefacts, so
//! this reproduction substitutes a fastText-style *hashing embedding*:
//! character n-grams of a token are hashed into a fixed number of buckets
//! with pseudo-random signs, summed and normalised. Similar strings share
//! n-grams and therefore land near each other — the distributional property
//! the downstream classifier actually exploits.

/// A simple, stable 64-bit FNV-1a hash (so features do not depend on the
/// platform's `DefaultHasher` seed and stay identical across runs).
pub fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Hash a token's character n-grams into a `dim`-bucket signed vector.
///
/// * `ngram_range` controls which n-gram lengths are used (inclusive).
/// * `seed` decorrelates different embedding spaces (the word and paragraph
///   groups use different seeds so they are not identical features).
pub fn hash_token(token: &str, dim: usize, ngram_range: (usize, usize), seed: u64) -> Vec<f32> {
    let mut v = vec![0.0f32; dim];
    let token = token.to_lowercase();
    let chars: Vec<char> = format!("<{token}>").chars().collect();
    let (lo, hi) = ngram_range;
    for n in lo..=hi {
        if chars.len() < n {
            continue;
        }
        for window in chars.windows(n) {
            let gram: String = window.iter().collect();
            let h = fnv1a(gram.as_bytes(), seed);
            let bucket = (h % dim as u64) as usize;
            let sign = if (h >> 63) & 1 == 0 { 1.0 } else { -1.0 };
            v[bucket] += sign;
        }
    }
    l2_normalize(&mut v);
    v
}

/// Normalise a vector to unit L2 norm in place (no-op for the zero vector).
pub fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Split a cell into word tokens (alphanumeric runs).
pub fn tokenize(cell: &str) -> Vec<String> {
    cell.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Cosine similarity between two equal-length vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic() {
        let a = hash_token("Warsaw", 64, (3, 5), 1);
        let b = hash_token("Warsaw", 64, (3, 5), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = hash_token("Warsaw", 64, (3, 5), 1);
        let b = hash_token("Warsaw", 64, (3, 5), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn vectors_are_unit_norm() {
        let v = hash_token("Florence", 64, (3, 5), 0);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn similar_strings_are_closer_than_dissimilar_ones() {
        let dim = 128;
        let warsaw = hash_token("Warsaw", dim, (3, 5), 0);
        let warsawa = hash_token("Warsawa", dim, (3, 5), 0);
        let number = hash_token("1234567", dim, (3, 5), 0);
        assert!(cosine(&warsaw, &warsawa) > cosine(&warsaw, &number));
        assert!(cosine(&warsaw, &warsawa) > 0.4);
    }

    #[test]
    fn short_tokens_still_produce_vectors() {
        let v = hash_token("a", 32, (3, 5), 0);
        // "<a>" has exactly one 3-gram, so the vector is non-zero.
        assert!(v.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn tokenize_splits_on_non_alphanumerics() {
        assert_eq!(tokenize("Warsaw, Poland"), vec!["warsaw", "poland"]);
        assert_eq!(tokenize("3.5 MB"), vec!["3", "5", "mb"]);
        assert!(tokenize("--- ").is_empty());
    }

    #[test]
    fn cosine_bounds() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
        assert!(cosine(&a, &b).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &a), 0.0);
    }

    #[test]
    fn fnv_differs_across_seeds_and_inputs() {
        assert_ne!(fnv1a(b"abc", 0), fnv1a(b"abd", 0));
        assert_ne!(fnv1a(b"abc", 0), fnv1a(b"abc", 1));
    }
}
