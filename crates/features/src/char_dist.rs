//! Character-distribution features (the paper's **Char** feature group).
//!
//! Sherlock's original Char group aggregates, for every printable ASCII
//! character, statistics of its per-cell occurrence counts. This
//! implementation follows the same recipe over a curated character set
//! (lower-case letters, digits and common punctuation) and three aggregate
//! statistics per character — mean count per cell, standard deviation of the
//! count, and the fraction of cells containing the character — which
//! preserves the property the downstream model relies on: columns with
//! different surface shapes (codes vs names vs dates vs free text) land in
//! clearly different regions of the feature space.

use crate::scratch::FeatureScratch;
use sato_tabular::table::Column;

/// The characters whose per-cell distributions are summarised.
pub const CHARSET: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', '0', '1', '2', '3', '4', '5', '6', '7', '8', '9', ' ', '.',
    ',', '-', '_', '/', ':', '(', ')', '&', '\'', '"', '%', '$', '#', '@', '+',
];

/// Number of aggregate statistics kept per character.
pub const STATS_PER_CHAR: usize = 3;

/// Dimensionality of the Char feature group.
pub const CHAR_FEATURE_DIM: usize = CHARSET.len() * STATS_PER_CHAR;

/// Extract the Char feature vector for a column.
///
/// Empty columns (or columns whose cells are all empty) produce an all-zero
/// vector, mirroring Sherlock's handling of missing data.
///
/// Convenience wrapper around [`char_features_into`] that allocates its own
/// workspace; batch callers should reuse a [`FeatureScratch`] instead.
pub fn char_features(column: &Column) -> Vec<f32> {
    let mut out = vec![0.0f32; CHAR_FEATURE_DIM];
    let mut scratch = FeatureScratch::new();
    scratch.scan(column);
    char_features_from_scan(&scratch, &mut out);
    out
}

/// Extract the Char features into `out` (length [`CHAR_FEATURE_DIM`]),
/// reusing `scratch` for the single cell pass.
pub fn char_features_into(column: &Column, scratch: &mut FeatureScratch, out: &mut [f32]) {
    scratch.scan(column);
    char_features_from_scan(scratch, out);
}

/// Aggregate the Char features from an already-scanned column.
///
/// The scan visits every cell's characters exactly once (instead of once per
/// alphabet character, each with its own lower-cased copy of the cell); this
/// aggregation then reads the per-cell histograms in cell order so the f32
/// accumulation is bit-identical to the naive per-character recipe.
pub(crate) fn char_features_from_scan(scratch: &FeatureScratch, out: &mut [f32]) {
    assert_eq!(out.len(), CHAR_FEATURE_DIM, "Char output width mismatch");
    out.fill(0.0);
    let cells = scratch.n_cells;
    if cells == 0 {
        return;
    }
    let n = cells as f32;
    for ci in 0..CHARSET.len() {
        let mut sum = 0.0f32;
        let mut present = 0usize;
        for cell in 0..cells {
            let c = scratch.char_count(cell, ci) as f32;
            sum += c;
            if c > 0.0 {
                present += 1;
            }
        }
        let mean = sum / n;
        let mut var = 0.0f32;
        for cell in 0..cells {
            let d = scratch.char_count(cell, ci) as f32 - mean;
            var += d * d;
        }
        var /= n;
        out[ci * STATS_PER_CHAR] = mean;
        out[ci * STATS_PER_CHAR + 1] = var.sqrt();
        out[ci * STATS_PER_CHAR + 2] = present as f32 / n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_is_fixed() {
        let col = Column::new(["abc", "def"]);
        assert_eq!(char_features(&col).len(), CHAR_FEATURE_DIM);
        assert_eq!(CHAR_FEATURE_DIM, CHARSET.len() * 3);
    }

    #[test]
    fn empty_column_gives_zero_vector() {
        let col = Column::new(Vec::<String>::new());
        assert!(char_features(&col).iter().all(|&x| x == 0.0));
        let blank = Column::new(["", "  "]);
        assert!(char_features(&blank).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn digit_heavy_columns_differ_from_letter_heavy_columns() {
        let numbers = Column::new(["1234", "5678", "90123"]);
        let words = Column::new(["alpha", "beta", "gamma"]);
        let fn_ = char_features(&numbers);
        let fw = char_features(&words);
        // index of '1' presence fraction
        let idx_one = CHARSET.iter().position(|&c| c == '1').unwrap() * STATS_PER_CHAR + 2;
        let idx_a = CHARSET.iter().position(|&c| c == 'a').unwrap() * STATS_PER_CHAR + 2;
        assert!(fn_[idx_one] > 0.0 && fw[idx_one] == 0.0);
        assert!(fw[idx_a] > 0.0 && fn_[idx_a] == 0.0);
    }

    #[test]
    fn case_is_folded() {
        let upper = Column::new(["ABC"]);
        let lower = Column::new(["abc"]);
        assert_eq!(char_features(&upper), char_features(&lower));
    }

    #[test]
    fn mean_count_reflects_repetition() {
        let col = Column::new(["aaa", "a"]);
        let f = char_features(&col);
        let idx_a_mean = CHARSET.iter().position(|&c| c == 'a').unwrap() * STATS_PER_CHAR;
        assert!((f[idx_a_mean] - 2.0).abs() < 1e-6);
        // Std of [3, 1] is 1.
        assert!((f[idx_a_mean + 1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn presence_fraction_bounded() {
        let col = Column::new(["a-b", "c", "d-e-f", ""]);
        let f = char_features(&col);
        assert!(f.iter().all(|&x| x >= 0.0));
        // every presence fraction (offset 2) is within [0, 1]
        for ci in 0..CHARSET.len() {
            assert!(f[ci * STATS_PER_CHAR + 2] <= 1.0);
        }
    }
}
