//! Reference (pre-optimisation) feature implementations.
//!
//! These are the original multi-pass extractors: `char` re-lowercases every
//! cell once per alphabet character, `word` allocates a `String` per token
//! and a fresh embedding `Vec` per hash call. They are kept verbatim for two
//! jobs:
//!
//! 1. **Correctness oracle** — the optimised single-pass extractors must
//!    reproduce them bit for bit (asserted by the `single_pass_parity`
//!    tests), so a serving artifact trained before the optimisation predicts
//!    identically after it.
//! 2. **Benchmark baseline** — `table2_efficiency` times them against the
//!    single-pass path and records the speedup in `BENCH_serving.json`.
//!
//! Nothing in the serving or training path calls into this module.

use crate::char_dist::{CHARSET, CHAR_FEATURE_DIM, STATS_PER_CHAR};
use crate::hashing::{fnv1a, l2_normalize, tokenize};
use crate::para_embed::PARA_EMBED_SEED;
use crate::stats::STAT_FEATURE_DIM;
use crate::word_embed::WORD_EMBED_SEED;
use sato_tabular::table::Column;
use std::collections::HashMap;

/// Reference Char features: one pass over the column *per alphabet
/// character*, with a lower-cased copy of every cell in each pass.
pub fn char_features(column: &Column) -> Vec<f32> {
    let cells: Vec<&str> = column
        .values
        .iter()
        .map(String::as_str)
        .filter(|v| !v.trim().is_empty())
        .collect();
    let mut out = vec![0.0f32; CHAR_FEATURE_DIM];
    if cells.is_empty() {
        return out;
    }
    let n = cells.len() as f32;
    for (ci, &ch) in CHARSET.iter().enumerate() {
        let counts: Vec<f32> = cells
            .iter()
            .map(|cell| cell.to_lowercase().chars().filter(|&c| c == ch).count() as f32)
            .collect();
        let mean = counts.iter().sum::<f32>() / n;
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f32>() / n;
        let present = counts.iter().filter(|&&c| c > 0.0).count() as f32 / n;
        out[ci * STATS_PER_CHAR] = mean;
        out[ci * STATS_PER_CHAR + 1] = var.sqrt();
        out[ci * STATS_PER_CHAR + 2] = present;
    }
    out
}

/// Reference Stat features: separate passes (and separate intermediate
/// vectors) per statistic family.
pub fn stat_features(column: &Column) -> Vec<f32> {
    let total = column.values.len();
    let non_empty: Vec<&str> = column
        .values
        .iter()
        .map(String::as_str)
        .filter(|v| !v.trim().is_empty())
        .collect();
    let n = non_empty.len();

    let mut out = vec![0.0f32; STAT_FEATURE_DIM];
    out[0] = total as f32;
    out[1] = n as f32;
    out[2] = if total > 0 {
        1.0 - n as f32 / total as f32
    } else {
        0.0
    };
    if n == 0 {
        return out;
    }

    let mut distinct: Vec<&str> = non_empty.clone();
    distinct.sort_unstable();
    distinct.dedup();
    out[3] = distinct.len() as f32;
    out[4] = distinct.len() as f32 / n as f32;

    let lengths: Vec<f32> = non_empty.iter().map(|v| v.chars().count() as f32).collect();
    let (len_mean, len_std, len_min, len_max) = moments(&lengths);
    out[5] = len_mean;
    out[6] = len_std;
    out[7] = len_min;
    out[8] = len_max;

    let token_counts: Vec<f32> = non_empty
        .iter()
        .map(|v| v.split_whitespace().count() as f32)
        .collect();
    let (tok_mean, tok_std, tok_min, tok_max) = moments(&token_counts);
    out[9] = tok_mean;
    out[10] = tok_std;
    out[11] = tok_min;
    out[12] = tok_max;

    let frac = |pred: &dyn Fn(&str) -> bool| {
        non_empty.iter().filter(|v| pred(v)).count() as f32 / n as f32
    };
    out[13] = frac(&|v| {
        v.chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == ',' || c == '-')
    });
    out[14] = frac(&|v| v.chars().any(|c| c.is_ascii_digit()));
    out[15] = frac(&|v| v.chars().all(|c| c.is_alphabetic() || c.is_whitespace()));
    out[16] = frac(&|v| v.chars().any(|c| c.is_uppercase()));
    out[17] = frac(&|v| v.contains(' '));
    out[18] = frac(&|v| v.contains(|c: char| !c.is_alphanumeric() && !c.is_whitespace()));

    let numeric: Vec<f32> = non_empty.iter().filter_map(|v| parse_numeric(v)).collect();
    out[19] = numeric.len() as f32 / n as f32;
    if !numeric.is_empty() {
        let (num_mean, num_std, num_min, num_max) = moments(&numeric);
        out[20] = num_mean;
        out[21] = num_std;
        out[22] = num_min;
        out[23] = num_max;
        out[24] = numeric.iter().filter(|&&x| x < 0.0).count() as f32 / numeric.len() as f32;
        out[25] =
            numeric.iter().filter(|&&x| x.fract() != 0.0).count() as f32 / numeric.len() as f32;
    }
    out[26] = non_empty
        .iter()
        .map(|v| {
            let chars = v.chars().count().max(1) as f32;
            v.chars().filter(|c| c.is_ascii_digit()).count() as f32 / chars
        })
        .sum::<f32>()
        / n as f32;
    out
}

fn parse_numeric(v: &str) -> Option<f32> {
    let cleaned: String = v
        .chars()
        .filter(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    if cleaned.is_empty() || !v.chars().any(|c| c.is_ascii_digit()) {
        return None;
    }
    let digits = v.chars().filter(|c| c.is_ascii_digit()).count();
    if (digits as f32) < 0.4 * v.chars().filter(|c| !c.is_whitespace()).count() as f32 {
        return None;
    }
    cleaned.parse::<f32>().ok()
}

fn moments(values: &[f32]) -> (f32, f32, f32, f32) {
    let n = values.len() as f32;
    let mean = values.iter().sum::<f32>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    (mean, var.sqrt(), min, max)
}

/// Reference token hash: lower-cased `String` copy, `format!` boundary
/// marks, `Vec<char>` collect and a gram `String` per window.
pub fn hash_token(token: &str, dim: usize, ngram_range: (usize, usize), seed: u64) -> Vec<f32> {
    let mut v = vec![0.0f32; dim];
    let token = token.to_lowercase();
    let chars: Vec<char> = format!("<{token}>").chars().collect();
    let (lo, hi) = ngram_range;
    for n in lo..=hi {
        if chars.len() < n {
            continue;
        }
        for window in chars.windows(n) {
            let gram: String = window.iter().collect();
            let h = fnv1a(gram.as_bytes(), seed);
            let bucket = (h % dim as u64) as usize;
            let sign = if (h >> 63) & 1 == 0 { 1.0 } else { -1.0 };
            v[bucket] += sign;
        }
    }
    l2_normalize(&mut v);
    v
}

/// Reference Word features: tokenize (allocating a `String` per token), one
/// embedding `Vec` per token.
pub fn word_features(column: &Column, dim: usize) -> Vec<f32> {
    let mut sum = vec![0.0f32; dim];
    let mut sum_sq = vec![0.0f32; dim];
    let mut count = 0usize;
    for cell in column.iter() {
        for token in tokenize(cell) {
            let v = hash_token(&token, dim, (3, 5), WORD_EMBED_SEED);
            for i in 0..dim {
                sum[i] += v[i];
                sum_sq[i] += v[i] * v[i];
            }
            count += 1;
        }
    }
    let mut out = vec![0.0f32; 2 * dim];
    if count == 0 {
        return out;
    }
    let n = count as f32;
    for i in 0..dim {
        let mean = sum[i] / n;
        let var = (sum_sq[i] / n - mean * mean).max(0.0);
        out[i] = mean;
        out[dim + i] = var.sqrt();
    }
    out
}

/// Reference Para features: a `String` allocation per token into a
/// `HashMap<String, usize>` term-frequency map, drained in sorted token
/// order.
pub fn para_features(column: &Column, dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    let mut term_freq: HashMap<String, usize> = HashMap::new();
    for cell in column.iter() {
        for token in tokenize(cell) {
            *term_freq.entry(token).or_insert(0) += 1;
        }
    }
    if term_freq.is_empty() {
        return out;
    }
    // Accumulate in sorted token order: f32 addition is not associative, so
    // HashMap iteration order would leak into the features.
    let mut term_freq: Vec<(String, usize)> = term_freq.into_iter().collect();
    term_freq.sort_unstable();
    for (token, tf) in term_freq {
        let h = fnv1a(token.as_bytes(), PARA_EMBED_SEED);
        let bucket = (h % dim as u64) as usize;
        let sign = if (h >> 63) & 1 == 0 { 1.0 } else { -1.0 };
        out[bucket] += sign * (1.0 + tf as f32).ln();
    }
    l2_normalize(&mut out);
    out
}

/// Reference whole-table Para features: clones every cell of every column
/// into one merged column before counting.
pub fn table_para_features(columns: &[Column], dim: usize) -> Vec<f32> {
    let mut merged = Column::default();
    for c in columns {
        merged.values.extend(c.values.iter().cloned());
    }
    para_features(&merged, dim)
}

#[cfg(test)]
mod single_pass_parity {
    use super::*;
    use crate::scratch::FeatureScratch;
    use sato_tabular::corpus::default_corpus;

    /// The optimised extractors must reproduce the reference implementations
    /// bit for bit over a realistic corpus — this is what makes the
    /// optimisation safe for already-trained serving artifacts.
    #[test]
    fn optimised_extractors_match_reference_bit_for_bit() {
        let corpus = default_corpus(40, 17);
        let mut scratch = FeatureScratch::new();
        let mut checked = 0usize;
        for table in corpus.iter() {
            for column in &table.columns {
                assert_eq!(
                    crate::char_dist::char_features(column),
                    char_features(column)
                );
                assert_eq!(crate::stats::stat_features(column), stat_features(column));
                assert_eq!(
                    crate::word_embed::word_features(column, 50),
                    word_features(column, 50)
                );
                // The scratch-reusing entry points agree with the allocating
                // wrappers (and therefore with the reference) too.
                let mut char_out = vec![0.0f32; CHAR_FEATURE_DIM];
                crate::char_dist::char_features_into(column, &mut scratch, &mut char_out);
                assert_eq!(char_out, char_features(column));
                let mut stat_out = vec![0.0f32; STAT_FEATURE_DIM];
                crate::stats::stat_features_into(column, &mut scratch, &mut stat_out);
                assert_eq!(stat_out, stat_features(column));
                let mut word_out = vec![0.0f32; 64];
                crate::word_embed::word_features_into(column, 32, &mut scratch, &mut word_out);
                assert_eq!(word_out, word_features(column, 32));
                assert_eq!(
                    crate::para_embed::para_features(column, 100),
                    para_features(column, 100)
                );
                let mut para_out = vec![0.0f32; 100];
                crate::para_embed::para_features_into(column, &mut scratch, &mut para_out);
                assert_eq!(para_out, para_features(column, 100));
                checked += 1;
            }
        }
        assert!(checked > 50, "parity checked on too few columns: {checked}");
    }

    #[test]
    fn edge_case_columns_match_reference() {
        use sato_tabular::table::Column;
        let cases = [
            Column::new(Vec::<String>::new()),
            Column::new(["", "  ", "\t"]),
            Column::new(["MiXeD CaSe", "ALLCAPS", "123-456", "-1.5", "1,777,972"]),
            Column::new(["a"]),
            Column::new(["Kelvin \u{212A}", "\u{00C9}clair", "na\u{00EF}ve"]),
            // Greek capital sigma is the one context-sensitive lower-case
            // mapping in Unicode: word-final Σ folds to ς, not σ.
            Column::new(["ΟΔΟΣ", "Οδός", "ΣΟΦΙΑ"]),
            Column::new(["75 kg", "3.5 MB", "$12.50", "50%"]),
        ];
        for column in &cases {
            assert_eq!(
                crate::char_dist::char_features(column),
                char_features(column)
            );
            assert_eq!(crate::stats::stat_features(column), stat_features(column));
            assert_eq!(
                crate::word_embed::word_features(column, 16),
                word_features(column, 16)
            );
            assert_eq!(
                crate::para_embed::para_features(column, 32),
                para_features(column, 32)
            );
        }
    }

    /// The hash-keyed Para counting must reproduce the sorted `String`-map
    /// drain bit for bit even when many distinct tokens collide in the same
    /// embedding *bucket* (the case where f32 accumulation order matters):
    /// dim = 2 forces roughly half the vocabulary into each bucket.
    #[test]
    fn para_bucket_collisions_accumulate_in_reference_order() {
        use sato_tabular::table::Column;
        let cells: Vec<String> = (0..60)
            .map(|i| format!("tok{i} tok{} shared repeated", i % 7))
            .collect();
        let column = Column::new(cells);
        for dim in [1, 2, 3, 100] {
            assert_eq!(
                crate::para_embed::para_features(&column, dim),
                para_features(&column, dim),
                "Para parity broke at dim {dim}"
            );
        }
    }

    /// `table_para_features` no longer clones every cell into a merged
    /// column, but the output must not change.
    #[test]
    fn table_para_features_match_merged_column_reference() {
        use sato_tabular::table::Column;
        let a = Column::new(["Rock", "Jazz", ""]);
        let b = Column::new(["Warsaw", "rock jazz", "1,777"]);
        let c = Column::new(Vec::<String>::new());
        let sets: Vec<Vec<Column>> = vec![vec![a, b, c.clone()], vec![], vec![c]];
        for cols in &sets {
            assert_eq!(
                crate::para_embed::table_para_features(cols, 64),
                table_para_features(cols, 64)
            );
        }
    }

    #[test]
    fn hash_token_matches_reference() {
        for token in [
            "Warsaw",
            "a",
            "",
            "1234567",
            "Braunschweig",
            "x-y",
            "ΟΔΟΣ",
            "ΣΟΦΙΑ",
        ] {
            assert_eq!(
                crate::hashing::hash_token(token, 64, (3, 5), 7),
                hash_token(token, 64, (3, 5), 7)
            );
        }
    }
}
