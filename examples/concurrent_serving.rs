//! Concurrent serving: one frozen `SatoPredictor` shared by reference across
//! many threads — the deployment shape the train/freeze/serve API split
//! exists for. A single set of weights serves every thread with no locks,
//! no cloning and no interior mutability, because the predictor is
//! `Send + Sync` and every prediction method takes `&self`.
//!
//! The example verifies that (a) concurrent serving produces bit-for-bit
//! the same predictions as a sequential pass, and (b) throughput scales
//! with the thread count.
//!
//! Run with:
//! ```text
//! cargo run --release --example concurrent_serving
//! ```

use sato::{SatoConfig, SatoModel, SatoPredictor, SatoVariant};
use sato_tabular::corpus::default_corpus;
use sato_tabular::split::train_test_split;
use std::time::Instant;

/// The `Send + Sync` guarantee, checked at compile time: if `SatoPredictor`
/// ever lost it, this example would stop compiling.
fn assert_shareable<T: Send + Sync>(value: &T) -> &T {
    value
}

fn main() {
    println!("training a full Sato model ...");
    let corpus = default_corpus(300, 21);
    let split = train_test_split(&corpus, 0.3, 5);
    let config = SatoConfig::fast().with_epochs(25);
    let model = SatoModel::train(&split.train, config, SatoVariant::Full);

    // Freeze the trained model into the immutable serving artifact.
    let predictor = model.into_predictor();
    let predictor = assert_shareable(&predictor);

    // Sequential baseline.
    let start = Instant::now();
    let sequential = predictor.predict_corpus(&split.test);
    let sequential_secs = start.elapsed().as_secs_f64();
    println!(
        "sequential: {} tables in {:.2}s ({:.0} tables/s)",
        sequential.len(),
        sequential_secs,
        sequential.len() as f64 / sequential_secs
    );

    // Corpus-batched serving: micro-batches of columns share one forward
    // pass per batch. Batching is exact, so the output is bit-identical.
    for batch_cols in [64, 256] {
        let start = Instant::now();
        let batched = predictor.predict_corpus_batched(&split.test, batch_cols);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(
            sequential, batched,
            "batched serving must be bit-for-bit identical to sequential"
        );
        println!(
            "batched({batch_cols}): {} tables in {:.2}s ({:.0} tables/s, {:.2}x)",
            batched.len(),
            secs,
            batched.len() as f64 / secs,
            sequential_secs / secs
        );
    }

    // Batching composes with thread sharding: each thread serves contiguous
    // micro-batches with its own scratch.
    assert_eq!(
        sequential,
        predictor.predict_corpus_parallel_batched(&split.test, 128, 4),
        "sharded batched serving must be bit-for-bit identical too"
    );

    // The built-in corpus fan-out: same output, more threads.
    for n_threads in [2, 4, 8] {
        let start = Instant::now();
        let parallel = predictor.predict_corpus_parallel(&split.test, n_threads);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(
            sequential, parallel,
            "parallel serving must be bit-for-bit identical to sequential"
        );
        println!(
            "{n_threads} threads:  {} tables in {:.2}s ({:.0} tables/s, {:.1}x)",
            parallel.len(),
            secs,
            parallel.len() as f64 / secs,
            sequential_secs / secs
        );
    }

    // Hand-rolled serving loop: independent worker threads borrowing the
    // same predictor, as an HTTP handler pool would. `std::thread::scope`
    // lets every worker borrow `predictor` directly.
    println!("\nhand-rolled worker pool (4 workers, interleaved tables):");
    let workers = 4;
    let test = &split.test;
    let answers = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    test.iter()
                        .skip(w)
                        .step_by(workers)
                        .map(|t| (t.id, predictor.predict(t)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });
    println!("workers annotated {} tables", answers.len());
    for (id, types) in answers.iter().take(3) {
        println!("  table {id}: {types:?}");
    }

    // The artifact round-trips through JSON, so a serving fleet can load the
    // exact same weights from disk.
    let json = predictor.to_json();
    let reloaded = SatoPredictor::from_json(&json).expect("artifact round-trip");
    assert_eq!(
        reloaded.predict_corpus(&split.test),
        sequential,
        "a reloaded artifact reproduces predictions bit for bit"
    );
    println!(
        "\nJSON artifact: {} KiB; reloaded predictor reproduces all {} predictions exactly",
        json.len() / 1024,
        sequential.len()
    );
}
