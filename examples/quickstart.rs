//! Quickstart: **train → freeze → serve**. Train a small Sato model on a
//! synthetic WebTables-style corpus, freeze it into an immutable
//! `SatoPredictor` artifact, round-trip the artifact through JSON, and
//! annotate a new, unseen table with semantic types.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use sato::{SatoConfig, SatoModel, SatoPredictor, SatoVariant};
use sato_tabular::corpus::default_corpus;
use sato_tabular::split::train_test_split;
use sato_tabular::table::{Column, Table};

fn main() {
    // 1. Build a labelled training corpus. In the paper this is the VizNet /
    //    WebTables corpus; here it is the synthetic substitute described in
    //    DESIGN.md, which preserves the long-tail and co-occurrence structure.
    println!("generating corpus ...");
    let corpus = default_corpus(300, 42);
    let split = train_test_split(&corpus, 0.2, 7);
    println!(
        "corpus: {} tables ({} labelled columns), training on {} tables",
        corpus.len(),
        corpus.num_columns(),
        split.train.len()
    );

    // 2. TRAIN (mutable phase): fit the full Sato model (topic-aware
    //    column-wise network + CRF).
    println!("training Sato (this takes a minute in release mode) ...");
    let config = SatoConfig::fast().with_epochs(25);
    let model = SatoModel::train(&split.train, config, SatoVariant::Full);
    println!(
        "trained in {:.1}s (column-wise) + {:.1}s (CRF layer)",
        model.timings().columnwise_secs,
        model.timings().crf_secs
    );

    // 3. FREEZE: turn the trained model into an immutable, Send + Sync
    //    serving artifact. Training-time state (optimiser, activation
    //    caches, RNG) is gone; the artifact only holds weights, running
    //    statistics, scalers, topic model and CRF. The compact SATOART1
    //    binary is the deployment format; JSON stays available as the
    //    debug/interchange format and round-trips bit for bit with it.
    let artifact = std::env::temp_dir().join("sato_quickstart.satoart");
    let json_artifact = std::env::temp_dir().join("sato_quickstart.json");
    let frozen = model.into_predictor();
    frozen
        .save_binary(&artifact)
        .expect("write binary artifact");
    frozen.save(&json_artifact).expect("write JSON artifact");
    let kib = |p: &std::path::Path| std::fs::metadata(p).map(|m| m.len() / 1024).unwrap_or(0);
    println!(
        "froze model into {} ({} KiB binary; {} KiB as JSON interchange)",
        artifact.display(),
        kib(&artifact),
        kib(&json_artifact)
    );

    // 4. SERVE: load the binary artifact (e.g. in a separate serving
    //    process) and annotate a brand-new table. Every predictor method
    //    takes `&self`.
    let predictor = SatoPredictor::load_binary(&artifact).expect("load predictor artifact");
    let table = Table::unlabelled(
        999_999,
        vec![
            Column::new(["Ada Lovelace", "Grace Hopper", "Alan Turing"]),
            Column::new(["1815-12-10", "1906-12-09", "1912-06-23"]),
            Column::new(["London", "Manhattan", "London"]),
        ],
    );
    let types = predictor.predict(&table);
    println!("\npredicted column types for the new table:");
    for (i, (ty, col)) in types.iter().zip(&table.columns).enumerate() {
        println!(
            "  column {i}: {ty:<12} (sample values: {})",
            col.values
                .iter()
                .take(2)
                .map(String::as_str)
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // 5. Ranked predictions with confidences for the first column.
    let proba = predictor.predict_proba(&table);
    let mut ranked: Vec<(usize, f32)> = proba[0].iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop-3 candidate types for the first column:");
    for (idx, p) in ranked.into_iter().take(3) {
        let ty = sato_tabular::types::SemanticType::from_index(idx).unwrap();
        println!("  {ty:<12} {p:.3}");
    }

    // 6. Quick accuracy check on the held-out tables — served from four
    //    threads at once; the frozen predictor guarantees the output is
    //    identical to a sequential pass.
    let predictions = predictor.predict_corpus_parallel(&split.test, 4);
    let (mut correct, mut total) = (0usize, 0usize);
    for p in &predictions {
        correct += p
            .gold
            .iter()
            .zip(&p.predicted)
            .filter(|(g, q)| g == q)
            .count();
        total += p.gold.len();
    }
    println!(
        "\nheld-out column accuracy: {:.1}% ({} columns, served on 4 threads)",
        100.0 * correct as f64 / total as f64,
        total
    );
}
