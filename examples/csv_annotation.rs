//! Annotate a headerless CSV file with semantic types and confidences — the
//! data-preparation workflow (cleaning / wrangling assistants) that the
//! paper's introduction lists as a primary application of semantic typing.
//!
//! Run with:
//! ```text
//! cargo run --release --example csv_annotation [path/to/file.csv]
//! ```
//! Without an argument the example writes and annotates a small demo CSV.

use sato::{SatoConfig, SatoModel, SatoVariant};
use sato_tabular::corpus::default_corpus;
use sato_tabular::csv::table_from_csv;
use sato_tabular::types::SemanticType;

const DEMO_CSV: &str = "\
Acme Corp,ACME,positive outlook,2,450,000
Globex,GLBX,restructuring announced,1,120,500
Initech,INTC,flat quarter,980,400
Northwind Traders,NWND,record revenue,3,310,900
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv_text = match args.first() {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("could not read {path}: {e}; falling back to the demo CSV");
            DEMO_CSV.to_string()
        }),
        None => DEMO_CSV.to_string(),
    };

    println!("training a Sato model on the synthetic corpus ...");
    let corpus = default_corpus(300, 5);
    let config = SatoConfig::fast().with_epochs(25);
    // Train once, then freeze into the immutable serving artifact the
    // annotation loop reads from.
    let model = SatoModel::train(&corpus, config, SatoVariant::Full).into_predictor();

    // Parse the CSV without assuming a header row: every column is unknown.
    let table = table_from_csv(1, &csv_text, false);
    println!(
        "parsed CSV: {} columns x {} rows (no header assumed)\n",
        table.num_columns(),
        table.num_rows()
    );

    let types = model.predict(&table);
    let proba = model.predict_proba(&table);
    println!("column annotations:");
    for (i, (ty, col)) in types.iter().zip(&table.columns).enumerate() {
        let confidence = proba[i][ty.index()];
        let sample = col
            .values
            .iter()
            .filter(|v| !v.is_empty())
            .take(2)
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(" | ");
        println!("  column {i}: {ty:<14} confidence {confidence:.2}  e.g. [{sample}]");
    }

    // Show the alternative candidates for the most uncertain column, the way
    // a data-wrangling UI would surface suggestions.
    let (uncertain_idx, _) = types
        .iter()
        .enumerate()
        .map(|(i, t)| (i, proba[i][t.index()]))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let mut ranked: Vec<(SemanticType, f32)> = proba[uncertain_idx]
        .iter()
        .enumerate()
        .map(|(i, &p)| (SemanticType::from_index(i).unwrap(), p))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nmost uncertain column is {uncertain_idx}; top-5 suggestions:");
    for (t, p) in ranked.into_iter().take(5) {
        println!("  {t:<14} {p:.3}");
    }
}
