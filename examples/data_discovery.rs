//! Data discovery with semantic types: given a pool of heterogeneous tables
//! without headers, annotate every column with Sato and answer
//! schema-matching style queries such as "which tables contain a city column
//! next to a country column?" — one of the downstream applications the
//! paper's introduction motivates (data discovery, schema matching).
//!
//! Run with:
//! ```text
//! cargo run --release --example data_discovery
//! ```

use sato::{SatoConfig, SatoModel, SatoVariant};
use sato_tabular::corpus::default_corpus;
use sato_tabular::split::train_test_split;
use sato_tabular::table::Corpus;
use sato_tabular::types::SemanticType;

fn main() {
    println!("building a data lake of unlabelled tables and training Sato ...");
    let corpus = default_corpus(350, 99);
    let split = train_test_split(&corpus, 0.25, 3);
    let config = SatoConfig::fast().with_epochs(25);
    // Train, then freeze: annotating a data lake is a pure serving workload,
    // so it runs on the immutable `SatoPredictor` across several threads.
    let predictor = SatoModel::train(&split.train, config, SatoVariant::Full).into_predictor();

    // Treat the held-out tables as an unlabelled "data lake": strip labels
    // and annotate the whole pool in parallel. Unlabelled tables get an
    // empty `gold` (the empty-gold convention) and per-column predictions.
    let lake = Corpus::new(
        split
            .test
            .iter()
            .map(|t| {
                let mut unlabelled = t.clone();
                unlabelled.labels.clear();
                unlabelled
            })
            .collect(),
    );
    let annotated: Vec<(u64, Vec<SemanticType>)> = predictor
        .predict_corpus_parallel(&lake, 4)
        .into_iter()
        .map(|p| {
            assert!(p.gold.is_empty(), "unlabelled lake tables carry no gold");
            (p.table_id, p.predicted)
        })
        .collect();
    println!(
        "annotated {} tables in the data lake (4 serving threads)\n",
        annotated.len()
    );

    // Query 1: tables that expose geographic joins (city next to country).
    let query_pairs = [
        (SemanticType::City, SemanticType::Country),
        (SemanticType::Age, SemanticType::Weight),
        (SemanticType::Isbn, SemanticType::Publisher),
    ];
    for (a, b) in query_pairs {
        let matches: Vec<u64> = annotated
            .iter()
            .filter(|(_, types)| types.contains(&a) && types.contains(&b))
            .map(|(id, _)| *id)
            .collect();
        println!(
            "discovery query: tables containing both `{a}` and `{b}` -> {} tables {:?}",
            matches.len(),
            matches.iter().take(8).collect::<Vec<_>>()
        );
    }

    // Query 2: distribution of predicted types across the lake, i.e. a
    // lightweight "semantic catalogue".
    let mut counts = vec![0usize; SemanticType::ALL.len()];
    for (_, types) in &annotated {
        for t in types {
            counts[t.index()] += 1;
        }
    }
    let mut catalogue: Vec<(SemanticType, usize)> = SemanticType::ALL
        .iter()
        .map(|&t| (t, counts[t.index()]))
        .filter(|(_, c)| *c > 0)
        .collect();
    catalogue.sort_by_key(|entry| std::cmp::Reverse(entry.1));
    println!("\nsemantic catalogue of the data lake (top 12 types):");
    for (t, c) in catalogue.into_iter().take(12) {
        println!("  {t:<14} {c}");
    }

    // Query 3: precision of the catalogue against the (hidden) gold labels.
    let (mut correct, mut total) = (0usize, 0usize);
    for (table, (_, predicted)) in split.test.iter().zip(&annotated) {
        correct += table
            .labels
            .iter()
            .zip(predicted)
            .filter(|(g, p)| g == p)
            .count();
        total += table.labels.len();
    }
    println!(
        "\ncatalogue column-type accuracy vs hidden gold labels: {:.1}%",
        100.0 * correct as f64 / total as f64
    );
}
