//! Data discovery at scale: annotate a data lake of unlabelled tables with
//! Sato, index every column's embedding into the `sato-index` HNSW graph
//! *as it is annotated*, and answer joinable/similar-column queries in
//! sublinear time — the schema-matching application the paper's
//! introduction motivates, now backed by an ANN index instead of a linear
//! scan.
//!
//! Run with:
//! ```text
//! cargo run --release -p sato-index --example data_discovery
//! ```

use sato::{SatoConfig, SatoModel, SatoVariant, ServingScratch};
use sato_index::{ColumnRef, HnswConfig, HnswIndex};
use sato_tabular::corpus::default_corpus;
use sato_tabular::split::train_test_split;
use sato_tabular::table::Corpus;
use sato_tabular::types::SemanticType;
use std::collections::HashMap;

fn main() {
    println!("building a data lake of unlabelled tables and training Sato ...");
    let corpus = default_corpus(350, 99);
    let split = train_test_split(&corpus, 0.25, 3);
    let config = SatoConfig::fast().with_epochs(25);
    // Train, then freeze: annotating a data lake is a pure serving workload
    // over the immutable `SatoPredictor`.
    let predictor = SatoModel::train(&split.train, config, SatoVariant::Full).into_predictor();

    // Treat the held-out tables as an unlabelled "data lake".
    let lake = Corpus::new(
        split
            .test
            .iter()
            .map(|t| {
                let mut unlabelled = t.clone();
                unlabelled.labels.clear();
                unlabelled
            })
            .collect(),
    );

    // Annotate the lake (the semantic catalogue) ...
    let mut catalogue: HashMap<ColumnRef, SemanticType> = HashMap::new();
    for prediction in predictor.predict_corpus_batched(&lake, 64) {
        for (col_idx, ty) in prediction.predicted.iter().enumerate() {
            catalogue.insert(
                ColumnRef {
                    table_id: prediction.table_id,
                    col_idx: col_idx as u32,
                },
                *ty,
            );
        }
    }

    // ... and index it **incrementally**: the batched embedding pass hands
    // each column's embedding to a callback the moment it is computed, and
    // the HNSW graph grows one insert at a time — no bulk rebuild, which is
    // exactly how the `sato-serve` index-on-annotate hook feeds the index
    // while a service runs.
    let mut index = HnswIndex::new(
        predictor.embedding_dim(),
        predictor.content_hash(),
        HnswConfig::default(),
    );
    let mut scratch = ServingScratch::new();
    predictor.embed_corpus_batched_with(&lake, 64, &mut scratch, |table_id, col_idx, embedding| {
        index.insert(ColumnRef { table_id, col_idx }, embedding);
    });
    let lake_cols: usize = lake.iter().map(|t| t.num_columns()).sum();
    assert_eq!(index.len(), lake_cols);
    println!(
        "annotated and indexed {} tables / {lake_cols} columns (HNSW top level {})\n",
        lake.len(),
        index.top_level()
    );

    // Joinable-column discovery: a *new* table arrives (it is not in the
    // lake); for each of its columns, ask the index which annotated lake
    // columns embed closest — candidates for joins or unions.
    let probe_corpus = default_corpus(4, 2024);
    let k = 5;
    for probe in probe_corpus.iter().take(2) {
        let embeddings = predictor.column_embeddings_into(probe, &mut scratch);
        println!("joinable-column candidates for new table {}:", probe.id);
        for c in 0..probe.num_columns() {
            let query = embeddings.row(c).to_vec();
            let hits = index.search_knn(&query, k);

            // Cross-check: the ANN answer against the exact brute-force
            // scan over the same vectors (`search_exact` is the oracle the
            // index's recall is measured against).
            let exact = index.search_exact(&query, k);
            let overlap = hits
                .iter()
                .filter(|h| exact.iter().any(|e| e.key == h.key))
                .count();
            assert!(
                overlap * 2 >= k,
                "ANN answer diverged from brute force: {overlap}/{k} overlap"
            );

            let gold = probe.labels.get(c).map(|t| t.to_string());
            let neighbours: Vec<String> = hits
                .iter()
                .map(|h| {
                    format!(
                        "{} (table {}, d={:.3})",
                        catalogue
                            .get(&h.key)
                            .map(|t| t.to_string())
                            .unwrap_or_else(|| "?".into()),
                        h.key.table_id,
                        h.distance
                    )
                })
                .collect();
            println!(
                "  col {c} [{}] -> {} | ANN/exact overlap {overlap}/{k}",
                gold.as_deref().unwrap_or("unlabelled"),
                neighbours.join(", ")
            );
        }
    }

    // The lake-wide view still works: a lightweight semantic catalogue from
    // the annotations the index was built alongside.
    let mut counts = vec![0usize; SemanticType::ALL.len()];
    for ty in catalogue.values() {
        counts[ty.index()] += 1;
    }
    let mut top: Vec<(SemanticType, usize)> = SemanticType::ALL
        .iter()
        .map(|&t| (t, counts[t.index()]))
        .filter(|(_, c)| *c > 0)
        .collect();
    top.sort_by_key(|entry| std::cmp::Reverse(entry.1));
    println!("\nsemantic catalogue of the data lake (top 8 types):");
    for (t, c) in top.into_iter().take(8) {
        println!("  {t:<14} {c}");
    }
}
