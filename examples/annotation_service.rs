//! The always-on annotation service end to end: many concurrent clients,
//! cross-request micro-batching, per-request deadlines, admission control
//! and a zero-downtime artifact hot-swap — with every response verified
//! bit-for-bit against the offline reference of the artifact that served
//! it.
//!
//! Run with:
//! ```text
//! cargo run --release --example annotation_service
//! ```

use sato::{SatoConfig, SatoModel, SatoPredictor, SatoVariant};
use sato_serve::{RequestOptions, SatoService, ServeError, ServiceConfig};
use sato_tabular::corpus::default_corpus;
use sato_tabular::table::Corpus;
use std::time::Duration;

fn train(seed: u64) -> SatoPredictor {
    let corpus = default_corpus(120, seed);
    SatoModel::train(
        &corpus,
        SatoConfig::fast().with_epochs(15),
        SatoVariant::Full,
    )
    .into_predictor()
}

fn main() {
    println!("training two model generations (v1, v2) ...");
    let v1 = train(21);
    let v2 = train(22);
    println!("  v1 artifact {:016x}", v1.content_hash());
    println!("  v2 artifact {:016x}", v2.content_hash());

    // Offline references for both generations, to verify serving exactness.
    let workload = default_corpus(60, 99);
    let reference_v1 = v1.predict_corpus(&workload);
    let reference_v2 = v2.predict_corpus(&workload);
    let (v1_hash, v2_hash) = (v1.content_hash(), v2.content_hash());

    // Start the service on v1. Small batches keep latency low on one core;
    // the queue bound keeps overload failures fast instead of slow.
    let service = SatoService::start(
        v1,
        ServiceConfig {
            batch_cols: 48,
            queue_depth: 128,
            default_deadline: Some(Duration::from_secs(30)),
            topic_memo_capacity: 0,
            index_on_annotate: None,
        },
    );

    // Many concurrent clients, one table per request. Halfway through, the
    // main thread hot-swaps the artifact to v2 — no drain, no restart, no
    // dropped request. Every response says which artifact served it, so
    // each can be checked against the right reference.
    println!(
        "serving {} single-table requests across 4 client threads,",
        workload.len()
    );
    println!("hot-swapping v1 -> v2 mid-stream ...");
    let tables = &workload.tables;
    let swap_at = tables.len() / 2;
    let responses = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..4)
            .map(|c| {
                let service = &service;
                scope.spawn(move || {
                    tables
                        .iter()
                        .enumerate()
                        .skip(c)
                        .step_by(4)
                        .map(|(i, t)| {
                            let handle = service
                                .submit_table(t.clone(), RequestOptions::default())
                                .expect("admitted");
                            (i, handle.wait().expect("served"))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        // Let roughly half the workload through on v1, then swap.
        while service.stats().completed < swap_at as u64 {
            std::thread::yield_now();
        }
        let meta = service.swap_predictor(v2);
        println!(
            "  swapped to {:016x} (live, in-flight rounds drained on v1)",
            meta.content_hash
        );
        clients
            .into_iter()
            .flat_map(|c| c.join().expect("client panicked"))
            .collect::<Vec<_>>()
    });

    // Verify: each response is bit-identical to the offline prediction of
    // whichever artifact tagged it.
    let mut by_artifact = [0usize; 2];
    for (i, response) in &responses {
        let (reference, slot) = if response.artifact_hash == v1_hash {
            (&reference_v1[*i], 0)
        } else {
            assert_eq!(response.artifact_hash, v2_hash, "unknown serving artifact");
            (&reference_v2[*i], 1)
        };
        assert_eq!(&response.predictions[0], reference, "table {i}");
        by_artifact[slot] += 1;
    }
    println!(
        "  all {} responses bit-identical to their artifact's reference ({} by v1, {} by v2)",
        responses.len(),
        by_artifact[0],
        by_artifact[1]
    );

    // Deadlines: a request that cannot be served in time is dropped before
    // its batch is formed and answered with `Expired` — it costs no forward
    // pass. Pause the batcher to force the situation deterministically.
    service.pause();
    let doomed = service
        .submit_table(
            tables[0].clone(),
            RequestOptions {
                deadline: Some(Duration::ZERO),
            },
        )
        .expect("admitted");
    service.resume();
    assert!(matches!(doomed.wait(), Err(ServeError::Expired)));
    println!("  zero-deadline request expired before batching, as configured");

    // A whole corpus in one request, served in coalesced micro-batches.
    let corpus_response = service
        .submit_corpus(Corpus::new(tables.clone()), RequestOptions::default())
        .expect("admitted")
        .wait()
        .expect("served");
    assert_eq!(corpus_response.predictions, reference_v2);
    println!(
        "  corpus request ({} tables) served on v2, bit-identical again",
        tables.len()
    );

    let stats = service.shutdown();
    println!("\nfinal service stats:");
    println!(
        "  admitted {} / rejected {} / expired {} / completed {}",
        stats.admitted, stats.rejected, stats.expired, stats.completed
    );
    println!("  artifact swaps: {}", stats.swaps);
    println!(
        "  {} micro-batches, mean fill {:.1} columns",
        stats.batches,
        stats.mean_batch_fill_cols()
    );
    println!(
        "  request latency: p50 {:.0} µs / p99 {:.0} µs / max {} µs",
        stats.p50_us(),
        stats.p99_us(),
        stats.latency.max_us
    );
}
