//! The Figure 1 motivating scenario of the paper: two tables contain an
//! *identical* column of city names ("Florence, Warsaw, London,
//! Braunschweig"), but in a biography table the correct type is `birthPlace`
//! while in a European-cities table it is `city`. A single-column model
//! cannot tell the two apart; Sato uses the table context to do so.
//!
//! Run with:
//! ```text
//! cargo run --release --example ambiguous_columns
//! ```

use sato::{SatoConfig, SatoModel, SatoVariant};
use sato_tabular::corpus::default_corpus;
use sato_tabular::corpus::figure1_tables;
use sato_tabular::types::SemanticType;

fn main() {
    println!("training Base (single-column) and Sato (contextual) models ...");
    let corpus = default_corpus(400, 17);
    let config = SatoConfig::fast().with_epochs(25);
    // Freeze both trained models into immutable serving artifacts; all
    // predictions below go through the read-only `SatoPredictor` surface.
    let base = SatoModel::train(&corpus, config.clone(), SatoVariant::Base).into_predictor();
    let sato = SatoModel::train(&corpus, config, SatoVariant::Full).into_predictor();

    let (table_a, table_b) = figure1_tables();
    println!(
        "\nTable A (influential people): columns = name, birthDate, notes, <ambiguous cities>"
    );
    println!("Table B (cities in Europe):    columns = <ambiguous cities>, country, capacity");
    println!(
        "the ambiguous column has identical values in both tables: {:?}",
        table_a.columns.last().unwrap().values
    );

    let base_a = base.predict(&table_a);
    let base_b = base.predict(&table_b);
    let sato_a = sato.predict(&table_a);
    let sato_b = sato.predict(&table_b);

    println!("\n--- single-column Base predictions ---");
    println!("Table A ambiguous column -> {}", base_a.last().unwrap());
    println!("Table B ambiguous column -> {}", base_b[0]);
    println!(
        "(the Base model gives the same answer regardless of context: {})",
        if base_a.last().unwrap() == &base_b[0] {
            "yes"
        } else {
            "no"
        }
    );

    println!("\n--- contextual Sato predictions ---");
    println!(
        "Table A ambiguous column -> {}   (gold: {})",
        sato_a.last().unwrap(),
        SemanticType::BirthPlace
    );
    println!(
        "Table B ambiguous column -> {}   (gold: {})",
        sato_b[0],
        SemanticType::City
    );

    let resolved = sato_a.last().unwrap() != &sato_b[0]
        || (*sato_a.last().unwrap() == SemanticType::BirthPlace && sato_b[0] == SemanticType::City);
    println!(
        "\nSato used the surrounding columns and the table topic to give context-dependent answers: {}",
        if resolved { "yes" } else { "not on this run (try more tables/epochs)" }
    );

    println!("\nfull predictions:");
    println!("  Table A gold: {:?}", table_a.labels);
    println!("  Table A Sato: {sato_a:?}");
    println!("  Table B gold: {:?}", table_b.labels);
    println!("  Table B Sato: {sato_b:?}");
}
